// End-to-end MapReduce tests on a full simulated cluster, across all five
// storage configurations (HDFS, Lustre, BB x three schemes).
#include <gtest/gtest.h>

#include "testing/co_assert.h"
#include "common/units.h"
#include "cluster/cluster.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace hpcbb::mapred {
namespace {

using namespace hpcbb::duration;  // NOLINT
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;
using net::NodeId;
using sim::Task;

ClusterConfig small_config(bb::Scheme scheme = bb::Scheme::kAsync) {
  ClusterConfig config;
  config.compute_nodes = 4;
  config.kv_servers = 2;
  config.oss_count = 2;
  config.block_size = 8 * MiB;
  config.kv_memory_per_server = 128 * MiB;
  config.scheme = scheme;
  return config;
}

struct FsCase {
  FsKind kind;
  bb::Scheme scheme;
  const char* label;
};

class MapredFsTest : public ::testing::TestWithParam<FsCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllFs, MapredFsTest,
    ::testing::Values(
        FsCase{FsKind::kHdfs, bb::Scheme::kAsync, "HDFS"},
        FsCase{FsKind::kLustre, bb::Scheme::kAsync, "Lustre"},
        FsCase{FsKind::kBurstBuffer, bb::Scheme::kAsync, "BBAsync"},
        FsCase{FsKind::kBurstBuffer, bb::Scheme::kSync, "BBSync"},
        FsCase{FsKind::kBurstBuffer, bb::Scheme::kLocal, "BBLocal"}),
    [](const auto& param_info) { return param_info.param.label; });

TEST_P(MapredFsTest, DfsioWriteReadRoundTrip) {
  Cluster cluster(small_config(GetParam().scheme));
  fs::FileSystem& fs = cluster.filesystem(GetParam().kind);
  net::RpcHub& hub = cluster.hub_for(GetParam().kind);

  DfsioParams params;
  params.files = 4;
  params.file_size = 16 * MiB;
  DfsioResult write_result, read_result;
  cluster.sim().spawn([](fs::FileSystem& f, net::RpcHub& h,
                         std::vector<NodeId> nodes, DfsioParams p,
                         DfsioResult& wout, DfsioResult& rout) -> Task<void> {
    auto w = co_await dfsio_write(f, h, nodes, p);
    CO_ASSERT_OK(w);
    wout = w.value();
    auto r = co_await dfsio_read(f, h, nodes, p);
    CO_ASSERT_OK(r);
    rout = r.value();
  }(fs, hub, cluster.compute_nodes(), params, write_result, read_result));
  cluster.sim().run();

  EXPECT_EQ(write_result.bytes, 4 * 16 * MiB);
  EXPECT_EQ(read_result.bytes, 4 * 16 * MiB);
  EXPECT_GT(write_result.aggregate_mbps, 0.0);
  EXPECT_GT(read_result.aggregate_mbps, 0.0);
}

TEST_P(MapredFsTest, SortProducesGloballySortedOutput) {
  Cluster cluster(small_config(GetParam().scheme));
  fs::FileSystem& fs = cluster.filesystem(GetParam().kind);
  net::RpcHub& hub = cluster.hub_for(GetParam().kind);
  auto runner = cluster.make_runner(GetParam().kind);

  GenerateParams gen;
  gen.files = 4;
  gen.records_per_file = 120000;  // 12 MB/file => 48 MB total
  std::uint64_t input_checksum = 0;
  JobStats stats;
  Bytes all_sorted;

  cluster.sim().spawn([](Cluster& c, fs::FileSystem& f, net::RpcHub& h,
                         mapred::JobRunner& r, GenerateParams g,
                         std::uint64_t& checksum, JobStats& st,
                         Bytes& sorted_out) -> Task<void> {
    auto gen_result =
        co_await generate_records_input(f, h, c.compute_nodes(), g);
    CO_ASSERT_OK(gen_result);
    checksum = gen_result.value().checksum;

    SortJob job(8);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < g.files; ++i) {
      inputs.push_back(g.dir + "/part-" + std::to_string(i));
    }
    auto job_result = co_await r.run(job, inputs, "/out/sort");
    CO_ASSERT_OK(job_result);
    st = job_result.value();

    // Concatenated part files must be globally sorted with the same record
    // multiset as the input.
    for (std::uint32_t part = 0; part < 8; ++part) {
      auto reader =
          co_await f.open("/out/sort/part-" + std::to_string(part), 0);
      CO_ASSERT_OK(reader);
      auto data = co_await reader.value()->read(0, reader.value()->size());
      CO_ASSERT_OK(data);
      sorted_out.insert(sorted_out.end(), data.value().begin(),
                        data.value().end());
    }
  }(cluster, fs, hub, *runner, gen, input_checksum, stats, all_sorted));
  cluster.sim().run();

  const std::uint64_t total_bytes = 4ull * 120000 * kRecordSize;
  ASSERT_EQ(all_sorted.size(), total_bytes);
  EXPECT_TRUE(records_sorted(all_sorted));
  EXPECT_EQ(records_checksum(all_sorted), input_checksum);
  EXPECT_EQ(stats.input_bytes, total_bytes);
  EXPECT_EQ(stats.output_bytes, total_bytes);
  EXPECT_EQ(stats.shuffle_bytes, total_bytes);
  EXPECT_GT(stats.maps_total, 0u);
}

TEST_P(MapredFsTest, GrepCountsConsistently) {
  Cluster cluster(small_config(GetParam().scheme));
  fs::FileSystem& fs = cluster.filesystem(GetParam().kind);
  net::RpcHub& hub = cluster.hub_for(GetParam().kind);
  auto runner = cluster.make_runner(GetParam().kind);

  std::uint64_t matches = 0;
  cluster.sim().spawn([](Cluster& c, fs::FileSystem& f, net::RpcHub& h,
                         mapred::JobRunner& r, std::uint64_t& out) -> Task<void> {
    GenerateParams gen;
    gen.files = 2;
    gen.records_per_file = 100000;
    auto gen_result =
        co_await generate_records_input(f, h, c.compute_nodes(), gen);
    CO_ASSERT_OK(gen_result);

    GrepJob job;
    const std::vector<std::string> inputs{gen.dir + "/part-0",
                                          gen.dir + "/part-1"};
    auto result = co_await r.run(job, inputs, "/out/grep");
    CO_ASSERT_OK(result);
    out = job.total_matches();
  }(cluster, fs, hub, *runner, matches));
  cluster.sim().run();
  // A 2-byte marker in 20 MB of uniform data: expect roughly 20e6/65536.
  EXPECT_GT(matches, 150u);
  EXPECT_LT(matches, 500u);
}

TEST(MapredLocalityTest, HdfsMapsAreMostlyNodeLocal) {
  Cluster cluster(small_config());
  auto runner = cluster.make_runner(FsKind::kHdfs);
  JobStats stats;
  cluster.sim().spawn([](Cluster& c, mapred::JobRunner& r,
                         JobStats& out) -> Task<void> {
    GenerateParams gen;
    gen.files = 4;
    gen.records_per_file = 160000;
    auto g = co_await generate_records_input(c.filesystem(FsKind::kHdfs),
                                             c.hub_for(FsKind::kHdfs),
                                             c.compute_nodes(), gen);
    CO_ASSERT_OK(g);
    SortJob job(4);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < 4; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto result = co_await r.run(job, inputs, "/out");
    CO_ASSERT_OK(result);
    out = result.value();
  }(cluster, *runner, stats));
  cluster.sim().run();
  // 3-way replication over 4 nodes: nearly every split has a local replica.
  EXPECT_GT(stats.locality_fraction(), 0.7);
}

TEST(MapredLocalityTest, LustreHasNoLocality) {
  Cluster cluster(small_config());
  auto runner = cluster.make_runner(FsKind::kLustre);
  JobStats stats;
  cluster.sim().spawn([](Cluster& c, mapred::JobRunner& r,
                         JobStats& out) -> Task<void> {
    GenerateParams gen;
    gen.files = 2;
    gen.records_per_file = 100000;
    auto g = co_await generate_records_input(c.filesystem(FsKind::kLustre),
                                             c.hub_for(FsKind::kLustre),
                                             c.compute_nodes(), gen);
    CO_ASSERT_OK(g);
    SortJob job(4);
    const std::vector<std::string> inputs{gen.dir + "/part-0",
                                          gen.dir + "/part-1"};
    auto result = co_await r.run(job, inputs, "/out");
    CO_ASSERT_OK(result);
    out = result.value();
  }(cluster, *runner, stats));
  cluster.sim().run();
  EXPECT_DOUBLE_EQ(stats.locality_fraction(), 0.0);
}

TEST(MapredLocalityTest, BbLocalSchemeRestoresLocality) {
  Cluster cluster(small_config(bb::Scheme::kLocal));
  auto runner = cluster.make_runner(FsKind::kBurstBuffer);
  JobStats stats;
  cluster.sim().spawn([](Cluster& c, mapred::JobRunner& r,
                         JobStats& out) -> Task<void> {
    GenerateParams gen;
    gen.files = 4;
    gen.records_per_file = 100000;
    auto g = co_await generate_records_input(
        c.filesystem(FsKind::kBurstBuffer), c.hub_for(FsKind::kBurstBuffer),
        c.compute_nodes(), gen);
    CO_ASSERT_OK(g);
    SortJob job(4);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < 4; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto result = co_await r.run(job, inputs, "/out");
    CO_ASSERT_OK(result);
    out = result.value();
  }(cluster, *runner, stats));
  cluster.sim().run();
  // One local replica per block, written round-robin by its generator node.
  EXPECT_GT(stats.locality_fraction(), 0.7);
}

TEST(ClusterTest, LocalStorageAccounting) {
  // HDFS consumes 3x dataset of node-local storage; BB-Async none.
  const std::uint64_t dataset = 4 * 16 * MiB;
  DfsioParams params;
  params.files = 4;
  params.file_size = 16 * MiB;

  Cluster hdfs_cluster(small_config());
  hdfs_cluster.sim().spawn([](Cluster& c, DfsioParams p) -> Task<void> {
    auto r = co_await dfsio_write(c.filesystem(FsKind::kHdfs),
                                  c.hub_for(FsKind::kHdfs),
                                  c.compute_nodes(), p);
    CO_ASSERT_OK(r);
  }(hdfs_cluster, params));
  hdfs_cluster.sim().run();
  EXPECT_EQ(hdfs_cluster.total_local_bytes_used(), 3 * dataset);

  Cluster bb_cluster(small_config(bb::Scheme::kAsync));
  bb_cluster.sim().spawn([](Cluster& c, DfsioParams p) -> Task<void> {
    auto r = co_await dfsio_write(c.filesystem(FsKind::kBurstBuffer),
                                  c.hub_for(FsKind::kBurstBuffer),
                                  c.compute_nodes(), p);
    CO_ASSERT_OK(r);
  }(bb_cluster, params));
  bb_cluster.sim().run();
  EXPECT_EQ(bb_cluster.total_local_bytes_used(), 0u);

  Cluster local_cluster(small_config(bb::Scheme::kLocal));
  local_cluster.sim().spawn([](Cluster& c, DfsioParams p) -> Task<void> {
    auto r = co_await dfsio_write(c.filesystem(FsKind::kBurstBuffer),
                                  c.hub_for(FsKind::kBurstBuffer),
                                  c.compute_nodes(), p);
    CO_ASSERT_OK(r);
  }(local_cluster, params));
  local_cluster.sim().run();
  // One RAM-disk replica: 1x dataset, i.e. a third of HDFS.
  EXPECT_EQ(local_cluster.total_local_bytes_used(), dataset);
}

TEST(ClusterTest, PaperHeadlineShapes) {
  // The abstract's three headline claims, at reduced scale: BB write beats
  // HDFS and Lustre; BB buffered reads beat both by a wide margin.
  DfsioParams params;
  params.files = 4;
  params.file_size = 32 * MiB;

  struct Numbers {
    double write_mbps, read_mbps;
  };
  auto measure = [&params](FsKind kind, bb::Scheme scheme) {
    // The buffer tier must out-provision the PFS for the paper's write
    // gains (SSD-journaled ingest is ~600 MB/s per KV server).
    ClusterConfig config = small_config(scheme);
    config.kv_servers = 3;
    Cluster cluster(config);
    Numbers numbers{};
    cluster.sim().spawn([](Cluster& c, FsKind k, DfsioParams p,
                           Numbers& out) -> Task<void> {
      auto w = co_await dfsio_write(c.filesystem(k), c.hub_for(k),
                                    c.compute_nodes(), p);
      CO_ASSERT_OK(w);
      out.write_mbps = w.value().aggregate_mbps;
      auto r = co_await dfsio_read(c.filesystem(k), c.hub_for(k),
                                   c.compute_nodes(), p);
      CO_ASSERT_OK(r);
      out.read_mbps = r.value().aggregate_mbps;
    }(cluster, kind, params, numbers));
    cluster.sim().run();
    return numbers;
  };

  const Numbers hdfs = measure(FsKind::kHdfs, bb::Scheme::kAsync);
  const Numbers lustre = measure(FsKind::kLustre, bb::Scheme::kAsync);
  const Numbers bb = measure(FsKind::kBurstBuffer, bb::Scheme::kAsync);

  EXPECT_GT(bb.write_mbps, 1.4 * hdfs.write_mbps);
  EXPECT_GT(bb.write_mbps, 1.1 * lustre.write_mbps);
  EXPECT_GT(bb.read_mbps, 3.0 * hdfs.read_mbps);
  EXPECT_GT(bb.read_mbps, 2.0 * lustre.read_mbps);
}

}  // namespace
}  // namespace hpcbb::mapred
