# Empty dependencies file for analytics_pipeline.
# This may be replaced when dependencies are built.
