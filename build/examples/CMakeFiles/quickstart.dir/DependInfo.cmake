
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hpcbb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/hpcbb_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/hpcbb_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/hpcbb_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/hpcbb_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpcbb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hpcbb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
