# Empty dependencies file for bench_f2_kv_throughput.
# This may be replaced when dependencies are built.
