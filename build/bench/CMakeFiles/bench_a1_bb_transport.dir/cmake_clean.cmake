file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_bb_transport.dir/bench_a1_bb_transport.cpp.o"
  "CMakeFiles/bench_a1_bb_transport.dir/bench_a1_bb_transport.cpp.o.d"
  "bench_a1_bb_transport"
  "bench_a1_bb_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_bb_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
