# Empty dependencies file for bench_a1_bb_transport.
# This may be replaced when dependencies are built.
