# Empty dependencies file for bench_f5_sort.
# This may be replaced when dependencies are built.
