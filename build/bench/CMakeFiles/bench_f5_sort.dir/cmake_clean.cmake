file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_sort.dir/bench_f5_sort.cpp.o"
  "CMakeFiles/bench_f5_sort.dir/bench_f5_sort.cpp.o.d"
  "bench_f5_sort"
  "bench_f5_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
