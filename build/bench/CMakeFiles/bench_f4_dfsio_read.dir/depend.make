# Empty dependencies file for bench_f4_dfsio_read.
# This may be replaced when dependencies are built.
