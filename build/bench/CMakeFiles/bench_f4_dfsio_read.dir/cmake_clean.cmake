file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_dfsio_read.dir/bench_f4_dfsio_read.cpp.o"
  "CMakeFiles/bench_f4_dfsio_read.dir/bench_f4_dfsio_read.cpp.o.d"
  "bench_f4_dfsio_read"
  "bench_f4_dfsio_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_dfsio_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
