file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_schemes.dir/bench_f7_schemes.cpp.o"
  "CMakeFiles/bench_f7_schemes.dir/bench_f7_schemes.cpp.o.d"
  "bench_f7_schemes"
  "bench_f7_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
