file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_read_promotion.dir/bench_a2_read_promotion.cpp.o"
  "CMakeFiles/bench_a2_read_promotion.dir/bench_a2_read_promotion.cpp.o.d"
  "bench_a2_read_promotion"
  "bench_a2_read_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_read_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
