# Empty compiler generated dependencies file for bench_a2_read_promotion.
# This may be replaced when dependencies are built.
