file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_local_storage.dir/bench_f9_local_storage.cpp.o"
  "CMakeFiles/bench_f9_local_storage.dir/bench_f9_local_storage.cpp.o.d"
  "bench_f9_local_storage"
  "bench_f9_local_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_local_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
