# Empty compiler generated dependencies file for bench_f9_local_storage.
# This may be replaced when dependencies are built.
