file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_io_intensive.dir/bench_f6_io_intensive.cpp.o"
  "CMakeFiles/bench_f6_io_intensive.dir/bench_f6_io_intensive.cpp.o.d"
  "bench_f6_io_intensive"
  "bench_f6_io_intensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_io_intensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
