# Empty compiler generated dependencies file for bench_f6_io_intensive.
# This may be replaced when dependencies are built.
