file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_dfsio_write.dir/bench_f3_dfsio_write.cpp.o"
  "CMakeFiles/bench_f3_dfsio_write.dir/bench_f3_dfsio_write.cpp.o.d"
  "bench_f3_dfsio_write"
  "bench_f3_dfsio_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_dfsio_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
