# Empty dependencies file for bench_f3_dfsio_write.
# This may be replaced when dependencies are built.
