# Empty dependencies file for bench_f11_capacity.
# This may be replaced when dependencies are built.
