file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_capacity.dir/bench_f11_capacity.cpp.o"
  "CMakeFiles/bench_f11_capacity.dir/bench_f11_capacity.cpp.o.d"
  "bench_f11_capacity"
  "bench_f11_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
