file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_fault.dir/bench_f8_fault.cpp.o"
  "CMakeFiles/bench_f8_fault.dir/bench_f8_fault.cpp.o.d"
  "bench_f8_fault"
  "bench_f8_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
