# Empty dependencies file for bench_f8_fault.
# This may be replaced when dependencies are built.
