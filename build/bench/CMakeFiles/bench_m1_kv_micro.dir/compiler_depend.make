# Empty compiler generated dependencies file for bench_m1_kv_micro.
# This may be replaced when dependencies are built.
