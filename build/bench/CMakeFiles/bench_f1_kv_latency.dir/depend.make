# Empty dependencies file for bench_f1_kv_latency.
# This may be replaced when dependencies are built.
