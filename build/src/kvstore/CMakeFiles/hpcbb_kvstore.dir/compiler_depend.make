# Empty compiler generated dependencies file for hpcbb_kvstore.
# This may be replaced when dependencies are built.
