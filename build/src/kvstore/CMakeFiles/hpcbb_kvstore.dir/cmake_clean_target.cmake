file(REMOVE_RECURSE
  "libhpcbb_kvstore.a"
)
