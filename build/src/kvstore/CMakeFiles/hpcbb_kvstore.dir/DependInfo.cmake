
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/client.cpp" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/client.cpp.o" "gcc" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/client.cpp.o.d"
  "/root/repo/src/kvstore/server.cpp" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/server.cpp.o" "gcc" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/server.cpp.o.d"
  "/root/repo/src/kvstore/slab.cpp" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/slab.cpp.o" "gcc" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/slab.cpp.o.d"
  "/root/repo/src/kvstore/store.cpp" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/store.cpp.o" "gcc" "src/kvstore/CMakeFiles/hpcbb_kvstore.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hpcbb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hpcbb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
