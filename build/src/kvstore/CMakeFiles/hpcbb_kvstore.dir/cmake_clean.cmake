file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_kvstore.dir/client.cpp.o"
  "CMakeFiles/hpcbb_kvstore.dir/client.cpp.o.d"
  "CMakeFiles/hpcbb_kvstore.dir/server.cpp.o"
  "CMakeFiles/hpcbb_kvstore.dir/server.cpp.o.d"
  "CMakeFiles/hpcbb_kvstore.dir/slab.cpp.o"
  "CMakeFiles/hpcbb_kvstore.dir/slab.cpp.o.d"
  "CMakeFiles/hpcbb_kvstore.dir/store.cpp.o"
  "CMakeFiles/hpcbb_kvstore.dir/store.cpp.o.d"
  "libhpcbb_kvstore.a"
  "libhpcbb_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
