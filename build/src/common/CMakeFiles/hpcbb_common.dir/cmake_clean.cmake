file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_common.dir/crc32c.cpp.o"
  "CMakeFiles/hpcbb_common.dir/crc32c.cpp.o.d"
  "CMakeFiles/hpcbb_common.dir/logging.cpp.o"
  "CMakeFiles/hpcbb_common.dir/logging.cpp.o.d"
  "CMakeFiles/hpcbb_common.dir/metrics.cpp.o"
  "CMakeFiles/hpcbb_common.dir/metrics.cpp.o.d"
  "CMakeFiles/hpcbb_common.dir/properties.cpp.o"
  "CMakeFiles/hpcbb_common.dir/properties.cpp.o.d"
  "CMakeFiles/hpcbb_common.dir/status.cpp.o"
  "CMakeFiles/hpcbb_common.dir/status.cpp.o.d"
  "CMakeFiles/hpcbb_common.dir/strings.cpp.o"
  "CMakeFiles/hpcbb_common.dir/strings.cpp.o.d"
  "libhpcbb_common.a"
  "libhpcbb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
