file(REMOVE_RECURSE
  "libhpcbb_common.a"
)
