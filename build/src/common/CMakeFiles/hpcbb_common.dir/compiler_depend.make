# Empty compiler generated dependencies file for hpcbb_common.
# This may be replaced when dependencies are built.
