file(REMOVE_RECURSE
  "libhpcbb_sim.a"
)
