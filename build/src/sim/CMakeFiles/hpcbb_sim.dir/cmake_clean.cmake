file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_sim.dir/simulation.cpp.o"
  "CMakeFiles/hpcbb_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/hpcbb_sim.dir/trace.cpp.o"
  "CMakeFiles/hpcbb_sim.dir/trace.cpp.o.d"
  "libhpcbb_sim.a"
  "libhpcbb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
