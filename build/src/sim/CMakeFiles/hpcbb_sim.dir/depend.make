# Empty dependencies file for hpcbb_sim.
# This may be replaced when dependencies are built.
