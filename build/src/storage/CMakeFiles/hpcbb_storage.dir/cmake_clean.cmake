file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_storage.dir/device.cpp.o"
  "CMakeFiles/hpcbb_storage.dir/device.cpp.o.d"
  "CMakeFiles/hpcbb_storage.dir/local_store.cpp.o"
  "CMakeFiles/hpcbb_storage.dir/local_store.cpp.o.d"
  "libhpcbb_storage.a"
  "libhpcbb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
