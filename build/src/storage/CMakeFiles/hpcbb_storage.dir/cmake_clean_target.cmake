file(REMOVE_RECURSE
  "libhpcbb_storage.a"
)
