# Empty compiler generated dependencies file for hpcbb_storage.
# This may be replaced when dependencies are built.
