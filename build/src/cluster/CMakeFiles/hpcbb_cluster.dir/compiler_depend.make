# Empty compiler generated dependencies file for hpcbb_cluster.
# This may be replaced when dependencies are built.
