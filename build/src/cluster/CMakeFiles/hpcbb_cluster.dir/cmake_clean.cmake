file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_cluster.dir/cluster.cpp.o"
  "CMakeFiles/hpcbb_cluster.dir/cluster.cpp.o.d"
  "libhpcbb_cluster.a"
  "libhpcbb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
