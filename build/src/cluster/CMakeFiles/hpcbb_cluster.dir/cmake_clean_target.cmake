file(REMOVE_RECURSE
  "libhpcbb_cluster.a"
)
