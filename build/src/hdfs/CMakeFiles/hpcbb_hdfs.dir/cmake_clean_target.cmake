file(REMOVE_RECURSE
  "libhpcbb_hdfs.a"
)
