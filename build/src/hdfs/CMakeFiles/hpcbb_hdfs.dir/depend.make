# Empty dependencies file for hpcbb_hdfs.
# This may be replaced when dependencies are built.
