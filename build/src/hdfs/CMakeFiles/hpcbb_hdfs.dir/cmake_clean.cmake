file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_hdfs.dir/client.cpp.o"
  "CMakeFiles/hpcbb_hdfs.dir/client.cpp.o.d"
  "CMakeFiles/hpcbb_hdfs.dir/datanode.cpp.o"
  "CMakeFiles/hpcbb_hdfs.dir/datanode.cpp.o.d"
  "CMakeFiles/hpcbb_hdfs.dir/namenode.cpp.o"
  "CMakeFiles/hpcbb_hdfs.dir/namenode.cpp.o.d"
  "libhpcbb_hdfs.a"
  "libhpcbb_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
