# Empty compiler generated dependencies file for hpcbb_burstbuffer.
# This may be replaced when dependencies are built.
