file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_burstbuffer.dir/agent.cpp.o"
  "CMakeFiles/hpcbb_burstbuffer.dir/agent.cpp.o.d"
  "CMakeFiles/hpcbb_burstbuffer.dir/filesystem.cpp.o"
  "CMakeFiles/hpcbb_burstbuffer.dir/filesystem.cpp.o.d"
  "CMakeFiles/hpcbb_burstbuffer.dir/master.cpp.o"
  "CMakeFiles/hpcbb_burstbuffer.dir/master.cpp.o.d"
  "libhpcbb_burstbuffer.a"
  "libhpcbb_burstbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_burstbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
