
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/burstbuffer/agent.cpp" "src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/agent.cpp.o" "gcc" "src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/agent.cpp.o.d"
  "/root/repo/src/burstbuffer/filesystem.cpp" "src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/filesystem.cpp.o" "gcc" "src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/filesystem.cpp.o.d"
  "/root/repo/src/burstbuffer/master.cpp" "src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/master.cpp.o" "gcc" "src/burstbuffer/CMakeFiles/hpcbb_burstbuffer.dir/master.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvstore/CMakeFiles/hpcbb_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/hpcbb_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpcbb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hpcbb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
