file(REMOVE_RECURSE
  "libhpcbb_burstbuffer.a"
)
