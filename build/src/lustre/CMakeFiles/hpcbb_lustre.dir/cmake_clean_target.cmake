file(REMOVE_RECURSE
  "libhpcbb_lustre.a"
)
