# Empty dependencies file for hpcbb_lustre.
# This may be replaced when dependencies are built.
