file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_lustre.dir/client.cpp.o"
  "CMakeFiles/hpcbb_lustre.dir/client.cpp.o.d"
  "CMakeFiles/hpcbb_lustre.dir/mds.cpp.o"
  "CMakeFiles/hpcbb_lustre.dir/mds.cpp.o.d"
  "CMakeFiles/hpcbb_lustre.dir/oss.cpp.o"
  "CMakeFiles/hpcbb_lustre.dir/oss.cpp.o.d"
  "libhpcbb_lustre.a"
  "libhpcbb_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
