# Empty dependencies file for hpcbb_net.
# This may be replaced when dependencies are built.
