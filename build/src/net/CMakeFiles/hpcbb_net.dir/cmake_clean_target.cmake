file(REMOVE_RECURSE
  "libhpcbb_net.a"
)
