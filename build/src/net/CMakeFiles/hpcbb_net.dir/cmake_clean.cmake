file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_net.dir/fabric.cpp.o"
  "CMakeFiles/hpcbb_net.dir/fabric.cpp.o.d"
  "CMakeFiles/hpcbb_net.dir/transport.cpp.o"
  "CMakeFiles/hpcbb_net.dir/transport.cpp.o.d"
  "libhpcbb_net.a"
  "libhpcbb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
