# Empty compiler generated dependencies file for hpcbb_mapred.
# This may be replaced when dependencies are built.
