file(REMOVE_RECURSE
  "libhpcbb_mapred.a"
)
