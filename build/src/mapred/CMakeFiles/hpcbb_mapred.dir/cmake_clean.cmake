file(REMOVE_RECURSE
  "CMakeFiles/hpcbb_mapred.dir/job.cpp.o"
  "CMakeFiles/hpcbb_mapred.dir/job.cpp.o.d"
  "CMakeFiles/hpcbb_mapred.dir/workloads.cpp.o"
  "CMakeFiles/hpcbb_mapred.dir/workloads.cpp.o.d"
  "libhpcbb_mapred.a"
  "libhpcbb_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcbb_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
