# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/lustre_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/burstbuffer_test[1]_include.cmake")
include("/root/repo/build/tests/mapred_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
