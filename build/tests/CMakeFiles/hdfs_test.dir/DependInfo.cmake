
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hdfs/hdfs_test.cpp" "tests/CMakeFiles/hdfs_test.dir/hdfs/hdfs_test.cpp.o" "gcc" "tests/CMakeFiles/hdfs_test.dir/hdfs/hdfs_test.cpp.o.d"
  "/root/repo/tests/hdfs/heartbeat_test.cpp" "tests/CMakeFiles/hdfs_test.dir/hdfs/heartbeat_test.cpp.o" "gcc" "tests/CMakeFiles/hdfs_test.dir/hdfs/heartbeat_test.cpp.o.d"
  "/root/repo/tests/hdfs/rack_placement_test.cpp" "tests/CMakeFiles/hdfs_test.dir/hdfs/rack_placement_test.cpp.o" "gcc" "tests/CMakeFiles/hdfs_test.dir/hdfs/rack_placement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdfs/CMakeFiles/hpcbb_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpcbb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hpcbb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
