
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/device_test.cpp" "tests/CMakeFiles/storage_test.dir/storage/device_test.cpp.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/device_test.cpp.o.d"
  "/root/repo/tests/storage/local_store_test.cpp" "tests/CMakeFiles/storage_test.dir/storage/local_store_test.cpp.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/local_store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/hpcbb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
