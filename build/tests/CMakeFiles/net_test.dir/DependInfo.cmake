
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/fabric_test.cpp" "tests/CMakeFiles/net_test.dir/net/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/fabric_test.cpp.o.d"
  "/root/repo/tests/net/rack_test.cpp" "tests/CMakeFiles/net_test.dir/net/rack_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/rack_test.cpp.o.d"
  "/root/repo/tests/net/rpc_test.cpp" "tests/CMakeFiles/net_test.dir/net/rpc_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/rpc_test.cpp.o.d"
  "/root/repo/tests/net/transport_test.cpp" "tests/CMakeFiles/net_test.dir/net/transport_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/transport_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hpcbb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcbb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcbb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
