file(REMOVE_RECURSE
  "CMakeFiles/burstbuffer_test.dir/burstbuffer/bb_test.cpp.o"
  "CMakeFiles/burstbuffer_test.dir/burstbuffer/bb_test.cpp.o.d"
  "CMakeFiles/burstbuffer_test.dir/burstbuffer/master_test.cpp.o"
  "CMakeFiles/burstbuffer_test.dir/burstbuffer/master_test.cpp.o.d"
  "burstbuffer_test"
  "burstbuffer_test.pdb"
  "burstbuffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstbuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
