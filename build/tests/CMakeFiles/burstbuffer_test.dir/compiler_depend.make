# Empty compiler generated dependencies file for burstbuffer_test.
# This may be replaced when dependencies are built.
