#!/usr/bin/env python3
"""Perf-regression gate for benchmark results.

Compares a freshly-produced benchmark result against a committed baseline
and fails (exit 1) when any pinned data point drifts outside its relative
tolerance — the automatic perf verdict every PR gets from the CI perf-gate
job. Accepts both result formats the repo produces: hpcbb.bench.v1 (the
simulated-time benches' JsonResult files) and google-benchmark JSON
(bench_m1_kv_micro's real-time microbenchmark output).

Usage:
    tools/bench_gate.py check BASELINE RESULT [--tol T] [--scale-candidate F]
    tools/bench_gate.py update RESULT [--out DIR] [--tol T] [--bench ID]

`check` prints a pass/fail table, one row per baseline point. Tolerance
precedence: a point's own "tolerance" in the baseline, else --tol, else the
baseline's "default_tolerance". Points present only in the candidate are
informational (new series don't fail the gate); points missing from the
candidate do fail. --scale-candidate multiplies every candidate value, which
is how CI self-tests that an injected 2x regression actually trips the gate.

`update` (re)generates a baseline from a result file — run it after an
intentional perf change and commit the new bench/baselines/<id>.json.

Baseline schema (hpcbb.gatebase.v1):
    {"schema": "hpcbb.gatebase.v1", "bench": "f1", "default_tolerance": 0.05,
     "points": [{"series": "...", "x": "...", "value": 123.4,
                 "tolerance": 0.10}]}   # per-point tolerance optional

Simulated-time benches are deterministic, so their baselines can pin values
tightly (default 5%). Real-time benches (m1) need loose tolerances: the
committed baseline is only meant to catch order-of-magnitude regressions
across very different CI hosts.
"""

import argparse
import json
import os
import sys

GATEBASE_SCHEMA = "hpcbb.gatebase.v1"
BENCH_SCHEMA = "hpcbb.bench.v1"

# google-benchmark time_unit -> nanoseconds
TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"bench_gate: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_gate: {path} is not valid JSON: {e}")


def result_points(doc, path):
    """Normalise a result file to {(series, x): value} plus a bench id."""
    if doc.get("schema") == BENCH_SCHEMA:
        points = {}
        for p in doc.get("points", []):
            points[(p["series"], str(p["x"]))] = float(p["value"])
        return doc.get("bench", "unknown"), points
    if "benchmarks" in doc:  # google-benchmark JSON
        points = {}
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            unit = TIME_UNITS.get(b.get("time_unit", "ns"), 1.0)
            points[(b["name"], "cpu_time_ns")] = float(b["cpu_time"]) * unit
        return "m1", points
    sys.exit(f"bench_gate: {path}: neither {BENCH_SCHEMA} nor "
             "google-benchmark JSON")


def load_baseline(path):
    if not os.path.exists(path):
        sys.exit(f"bench_gate: no baseline at {path} — generate one with:\n"
                 f"  tools/bench_gate.py update <result.json> "
                 f"--out {os.path.dirname(path) or '.'}")
    doc = load_json(path)
    if doc.get("schema") != GATEBASE_SCHEMA:
        sys.exit(f"bench_gate: {path}: unsupported schema "
                 f"{doc.get('schema')!r} (want {GATEBASE_SCHEMA!r})")
    return doc


def check(args):
    baseline = load_baseline(args.baseline)
    _, candidate = result_points(load_json(args.result), args.result)
    if args.scale_candidate != 1.0:
        candidate = {k: v * args.scale_candidate for k, v in candidate.items()}
        print(f"note: candidate values scaled x{args.scale_candidate:g} "
              "(gate self-test)")

    rows = []
    failures = 0
    for p in baseline.get("points", []):
        key = (p["series"], str(p["x"]))
        base = float(p["value"])
        tol = p.get("tolerance", args.tol if args.tol is not None
                    else baseline.get("default_tolerance", 0.05))
        name = f"{key[0]} @ {key[1]}"
        if key not in candidate:
            rows.append((name, base, None, tol, "MISSING"))
            failures += 1
            continue
        cand = candidate[key]
        if base == 0:
            ok = cand == 0
            rel = 0.0 if ok else float("inf")
        else:
            rel = (cand - base) / base
            ok = abs(rel) <= tol
        rows.append((name, base, cand, tol, f"{rel:+.1%}" if ok else "FAIL"))
        failures += 0 if ok else 1
    extras = sorted(set(candidate) - {(p["series"], str(p["x"]))
                                      for p in baseline.get("points", [])})

    width = max((len(r[0]) for r in rows), default=10)
    print(f"perf gate: {args.result} vs {args.baseline} "
          f"(bench {baseline.get('bench')})")
    print(f"  {'point':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'tol':>6}  verdict")
    for name, base, cand, tol, verdict in rows:
        cand_s = f"{cand:.6g}" if cand is not None else "-"
        print(f"  {name:<{width}}  {base:>12.6g}  {cand_s:>12}  "
              f"{tol:>6.0%}  {verdict}")
    for key in extras:
        print(f"  {f'{key[0]} @ {key[1]}':<{width}}  {'-':>12}  "
              f"{candidate[key]:>12.6g}  {'':>6}  new (not gated)")

    if failures:
        print(f"gate: FAIL ({failures} of {len(rows)} points out of "
              "tolerance or missing)")
        return 1
    print(f"gate: PASS ({len(rows)} points within tolerance)")
    return 0


def update(args):
    bench, points = result_points(load_json(args.result), args.result)
    if args.bench:
        bench = args.bench
    baseline = {
        "schema": GATEBASE_SCHEMA,
        "bench": bench,
        "default_tolerance": args.tol if args.tol is not None else 0.05,
        "points": [{"series": series, "x": x, "value": value}
                   for (series, x), value in sorted(points.items())],
    }
    path = os.path.join(args.out, f"{bench}.json")
    os.makedirs(args.out, exist_ok=True)
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"baseline ({len(baseline['points'])} points, default tol "
          f"{baseline['default_tolerance']:.0%}) written to {path}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="gate a result against a baseline")
    p_check.add_argument("baseline")
    p_check.add_argument("result")
    p_check.add_argument("--tol", type=float, default=None,
                         help="override the baseline's default tolerance")
    p_check.add_argument("--scale-candidate", type=float, default=1.0,
                         help="multiply candidate values (regression "
                              "self-test)")

    p_update = sub.add_parser("update", help="write a baseline from a result")
    p_update.add_argument("result")
    p_update.add_argument("--out", default="bench/baselines",
                          help="baseline directory (default bench/baselines)")
    p_update.add_argument("--tol", type=float, default=None,
                          help="default tolerance to embed (default 0.05)")
    p_update.add_argument("--bench", default=None,
                          help="bench id override (required semantics for "
                               "google-benchmark input defaults to m1)")

    args = parser.parse_args()
    if args.command == "check":
        sys.exit(check(args))
    sys.exit(update(args))


if __name__ == "__main__":
    main()
