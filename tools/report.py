#!/usr/bin/env python3
"""Pretty-print and diff hpcbb experiment reports (hpcbb.report.v1/v2/v3).

Usage:
    tools/report.py show report.json
    tools/report.py diff baseline.json candidate.json
    tools/report.py incidents bundle.json [more.json ...]

`show` renders counters, gauges (with high-watermarks), histogram
summaries, (v2) the latency-attribution section — per-layer time with
its queue/service split plus the slowest ops and their bottleneck layers —
and (v3) the SLO health section as aligned tables. `diff` compares two
reports metric-by-metric and prints absolute and relative deltas, flagging
metrics present in only one report; when only one side has a health
section it prints "n/a" for it instead of failing. `incidents` renders
hpcbb.incident.v1 bundles (or the incident timeline of v3 reports): the
alert timeline, the rule -> injected-fault correlation, and the suspect
op_ids in flight when each fault hit. Exit status for `diff` is 0 even
when values differ — it is a reporting tool, not a gate (see
tools/bench_gate.py for the gate).
"""

import argparse
import json
import sys

SCHEMAS = ("hpcbb.report.v1", "hpcbb.report.v2", "hpcbb.report.v3")
INCIDENT_SCHEMA = "hpcbb.incident.v1"

# Counters surfaced in the dedicated resilience section (retry/timeout
# behaviour, injected faults, failover and failure-detector activity).
RESILIENCE_PREFIXES = (
    "net.retry.",
    "faults.injected",
    "kv.failover.",
    "kv.repl.",
    "kv.restarts",
    "bb.detector.",
    "bb.degraded.",
    "bb.md.",
    "bb.store.buffer_skips",
    "bb.read.lustre_fallbacks",
)

# Counters surfaced in the dedicated integrity section (corruption injected,
# checksum detection/repair on the read path, scrubber activity, quarantined
# blocks and CRC-failure fallbacks).
INTEGRITY_PREFIXES = (
    "kv.integrity.",
    "kv.scrub.",
    "bb.quarantined_blocks",
    "bb.read.local_crc_failures",
    "bb.read.buffer_crc_failures",
    "bb.read.lustre_crc_failures",
    "faults.injected{kind=corrupt.",
)

INTEGRITY_HISTOGRAMS = ("kv.scrub.pass_ns",)


def resilience_counters(counters):
    return {name: value for name, value in counters.items()
            if name.startswith(RESILIENCE_PREFIXES)}


def integrity_counters(counters):
    return {name: value for name, value in counters.items()
            if name.startswith(INTEGRITY_PREFIXES)}


def load(path):
    with open(path) as f:
        report = json.load(f)
    schema = report.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"{path}: unsupported schema {schema!r} "
                 f"(want one of {', '.join(map(repr, SCHEMAS))})")
    return report


def fmt_count(value):
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}"


def fmt_ns(ns):
    """Histograms in this codebase overwhelmingly record nanoseconds."""
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def show(report):
    print(f"schema: {report['schema']}   sim_time: {fmt_ns(report['sim_time_ns'])}")

    counters = report.get("counters", {})
    if counters:
        print("\ncounters:")
        width = max(map(len, counters))
        for name in sorted(counters):
            print(f"  {name:<{width}}  {fmt_count(counters[name]):>16}")

    resilience = resilience_counters(counters)
    if resilience:
        print("\nresilience (retries / faults / failover):")
        width = max(map(len, resilience))
        for name in sorted(resilience):
            print(f"  {name:<{width}}  {fmt_count(resilience[name]):>16}")

    # Replication: repair/anti-entropy volume plus the repair-duration
    # histograms, pulled together so a recovery run reads as one story.
    repl_counters = {n: v for n, v in counters.items()
                     if n.startswith("kv.repl.")}
    repl_hists = {n: h for n, h in report.get("histograms", {}).items()
                  if n in ("kv.repl.repair_ns", "kv.repl.anti_entropy_ns",
                           "kv.repl.ack_primary_ns", "kv.repl.ack_all_ns")}
    if repl_counters or repl_hists:
        print("\nreplication (repair / anti-entropy):")
        width = max(map(len, list(repl_counters) + list(repl_hists)))
        for name in sorted(repl_counters):
            print(f"  {name:<{width}}  {fmt_count(repl_counters[name]):>16}")
        for name in sorted(repl_hists):
            h = repl_hists[name]
            print(f"  {name:<{width}}  runs {h['count']:>5,}  "
                  f"p50 {fmt_ns(h['p50'])}  p99 {fmt_ns(h['p99'])}  "
                  f"max {fmt_ns(h['max'])}")

    # Integrity: injected corruption vs detection/repair outcomes plus the
    # scrub-pass duration histogram, pulled together so a chaos run answers
    # "did any corrupt byte survive" in one glance.
    integ_counters = integrity_counters(counters)
    integ_hists = {n: h for n, h in report.get("histograms", {}).items()
                   if n in INTEGRITY_HISTOGRAMS}
    if integ_counters or integ_hists:
        print("\nintegrity (corruption / detection / repair):")
        width = max(map(len, list(integ_counters) + list(integ_hists)))
        for name in sorted(integ_counters):
            print(f"  {name:<{width}}  {fmt_count(integ_counters[name]):>16}")
        for name in sorted(integ_hists):
            h = integ_hists[name]
            print(f"  {name:<{width}}  runs {h['count']:>5,}  "
                  f"p50 {fmt_ns(h['p50'])}  p99 {fmt_ns(h['p99'])}  "
                  f"max {fmt_ns(h['max'])}")

    gauges = report.get("gauges", {})
    if gauges:
        print("\ngauges:                                      value    high-watermark")
        width = max(map(len, gauges))
        for name in sorted(gauges):
            g = gauges[name]
            print(f"  {name:<{width}}  {fmt_count(g['value']):>16}  "
                  f"{fmt_count(g['high_watermark']):>16}")

    histograms = report.get("histograms", {})
    if histograms:
        print("\nhistograms:              count       mean        p50        p95        p99        max")
        width = max(map(len, histograms))
        for name in sorted(histograms):
            h = histograms[name]
            print(f"  {name:<{width}}  {h['count']:>8,}  "
                  f"{fmt_ns(h['mean']):>9}  {fmt_ns(h['p50']):>9}  "
                  f"{fmt_ns(h['p95']):>9}  {fmt_ns(h['p99']):>9}  "
                  f"{fmt_ns(h['max']):>9}")

    timeline = report.get("timeline")
    if timeline:
        points = timeline.get("points", [])
        series = timeline.get("series", [])
        print(f"\ntimeline: {len(points)} samples x {len(series)} series, "
              f"interval {fmt_ns(timeline.get('interval_ns', 0))}")

    attribution = report.get("attribution")
    if attribution:
        show_attribution(attribution)

    health = report.get("health")
    if health:
        show_health(health)


def show_health(health):
    rules = health.get("rules", [])
    print(f"\nhealth: {len(rules)} rules, {health.get('warns', 0)} warns, "
          f"{health.get('pages', 0)} pages, {health.get('resolves', 0)} "
          f"resolves")
    if rules:
        width = max(max(len(r["name"]) for r in rules), 4)
        print(f"  {'rule':<{width}}  {'kind':<19}  {'state':<5}  "
              f"{'value':>14}  {'threshold':>14}  fast-burn  slow-burn")
        for r in rules:
            print(f"  {r['name']:<{width}}  {r['kind']:<19}  "
                  f"{r['state']:<5}  {r['value']:>14,.0f}  "
                  f"{r['threshold']:>14,.0f}  {r['fast_burn']:>9.2f}  "
                  f"{r['slow_burn']:>9.2f}")
    transitions = health.get("transitions", [])
    if transitions:
        print("\n  alert timeline:")
        for t in transitions:
            print(f"    {fmt_ns(t['t_ns']):>10}  {t['rule']:<24}  "
                  f"{t['from']} -> {t['to']}  (fast {t['fast_burn']:.2f}, "
                  f"slow {t['slow_burn']:.2f})")
    incidents = health.get("incidents", [])
    for inc in incidents:
        where = inc.get("file") or "(in memory)"
        print(f"  incident: {inc['rule']} at {fmt_ns(inc['t_ns'])} -> {where}")


def show_attribution(attribution):
    layers = attribution.get("layers", {})
    print(f"\nattribution: {attribution.get('op_count', 0):,} ops")
    if layers:
        print("  layer        ops  bottleneck      total      queue"
              "    service   queue%    p50(total)  p99(total)")
        width = max(max(map(len, layers)), 8)
        for name in sorted(layers):
            lay = layers[name]
            total = lay["total_ns"]
            queue = lay["queue_ns"]
            share = f"{queue / total:.0%}" if total else "-"
            hist = lay.get("total", {})
            print(f"  {name:<{width}}  {lay['ops']:>6,}  {lay['bottleneck_ops']:>10,}  "
                  f"{fmt_ns(total):>9}  {fmt_ns(queue):>9}  "
                  f"{fmt_ns(lay['service_ns']):>9}  {share:>7}  "
                  f"{fmt_ns(hist.get('p50', 0)):>12}  {fmt_ns(hist.get('p99', 0)):>10}")
    top = attribution.get("top_ops", [])
    if top:
        print(f"\n  slowest {len(top)} ops (critical-path breakdown):")
        for op in top:
            parts = "  ".join(
                f"{lay['layer']} {fmt_ns(lay['total_ns'])}"
                f" (q {fmt_ns(lay['queue_ns'])})" for lay in op.get("layers", []))
            print(f"    op {op['op_id']:<6} e2e {fmt_ns(op['e2e_ns']):>9}  "
                  f"bottleneck {op.get('bottleneck', '-'):<9}  {parts}")


def delta_line(name, a, b, width):
    if a == b:
        return None
    diff = b - a
    rel = f" ({diff / a:+.1%})" if a else ""
    return (f"  {name:<{width}}  {fmt_count(a):>16} -> {fmt_count(b):>16}"
            f"  {diff:+,}{rel}")


def diff_section(title, left, right, values):
    """values: name -> (a, b) extractor over the two dicts."""
    names = sorted(set(left) | set(right))
    if not names:
        return
    width = max(map(len, names))
    lines = []
    for name in names:
        if name not in left:
            lines.append(f"  {name:<{width}}  only in candidate")
            continue
        if name not in right:
            lines.append(f"  {name:<{width}}  only in baseline")
            continue
        try:
            a, b = values(left[name], right[name])
        except (KeyError, TypeError):
            # Schema drift (e.g. a v1 report next to a v2 one): a metric
            # may exist on both sides but lack the field this section
            # compares. Report it instead of crashing the whole diff.
            lines.append(f"  {name:<{width}}  n/a (field missing in one report)")
            continue
        line = delta_line(name, a, b, width)
        if line:
            lines.append(line)
    if lines:
        print(f"\n{title}:")
        print("\n".join(lines))


def diff(baseline, candidate):
    print(f"baseline sim_time {fmt_ns(baseline['sim_time_ns'])}, "
          f"candidate sim_time {fmt_ns(candidate['sim_time_ns'])}")
    diff_section("counters", baseline.get("counters", {}),
                 candidate.get("counters", {}), lambda a, b: (a, b))
    diff_section("resilience (retries / faults / failover)",
                 resilience_counters(baseline.get("counters", {})),
                 resilience_counters(candidate.get("counters", {})),
                 lambda a, b: (a, b))
    diff_section("integrity (corruption / detection / repair)",
                 integrity_counters(baseline.get("counters", {})),
                 integrity_counters(candidate.get("counters", {})),
                 lambda a, b: (a, b))
    diff_section("gauges (value)", baseline.get("gauges", {}),
                 candidate.get("gauges", {}),
                 lambda a, b: (a["value"], b["value"]))
    diff_section("histograms (p50)", baseline.get("histograms", {}),
                 candidate.get("histograms", {}),
                 lambda a, b: (a["p50"], b["p50"]))
    diff_section("histograms (p99)", baseline.get("histograms", {}),
                 candidate.get("histograms", {}),
                 lambda a, b: (a["p99"], b["p99"]))
    diff_section("attribution layers (total_ns)",
                 baseline.get("attribution", {}).get("layers", {}),
                 candidate.get("attribution", {}).get("layers", {}),
                 lambda a, b: (a["total_ns"], b["total_ns"]))
    diff_section("attribution layers (queue_ns)",
                 baseline.get("attribution", {}).get("layers", {}),
                 candidate.get("attribution", {}).get("layers", {}),
                 lambda a, b: (a["queue_ns"], b["queue_ns"]))
    diff_health(baseline, candidate)


def diff_health(baseline, candidate):
    """Health is optional (v3, and only with slo.* rules configured): a
    one-sided section is schema drift to report, never a crash."""
    b, c = baseline.get("health"), candidate.get("health")
    if b is None and c is None:
        return
    if b is None or c is None:
        print("\nhealth: n/a (section missing in one report)")
        return
    print(f"\nhealth: warns {b.get('warns', 0)} -> {c.get('warns', 0)}, "
          f"pages {b.get('pages', 0)} -> {c.get('pages', 0)}, "
          f"resolves {b.get('resolves', 0)} -> {c.get('resolves', 0)}")
    b_rules = {r["name"]: r for r in b.get("rules", [])}
    c_rules = {r["name"]: r for r in c.get("rules", [])}
    names = sorted(set(b_rules) | set(c_rules))
    width = max(map(len, names), default=4)
    for name in names:
        if name not in b_rules:
            print(f"  {name:<{width}}  only in candidate")
        elif name not in c_rules:
            print(f"  {name:<{width}}  only in baseline")
        else:
            sa, sb = b_rules[name]["state"], c_rules[name]["state"]
            ta = b_rules[name].get("breach_ticks", 0)
            tb = c_rules[name].get("breach_ticks", 0)
            if sa != sb or ta != tb:
                print(f"  {name:<{width}}  state {sa} -> {sb}, "
                      f"breach_ticks {ta:,} -> {tb:,}")


def show_incident(path, doc):
    print(f"== {path} ==")
    print(f"incident {doc.get('seq', '?')}: rule {doc['rule']} "
          f"({doc.get('kind', '?')}) paged at {fmt_ns(doc['t_ns'])}  "
          f"value {doc.get('value', 0):,.0f} vs threshold "
          f"{doc.get('threshold', 0):,.0f}  "
          f"(fast burn {doc.get('fast_burn', 0):.2f}, "
          f"slow {doc.get('slow_burn', 0):.2f})")

    alerts = doc.get("alerts", [])
    if alerts:
        print("  alert timeline:")
        for a in alerts:
            print(f"    {fmt_ns(a['t_ns']):>10}  {a['rule']:<24}  "
                  f"{a['from']} -> {a['to']}")

    # The correlation a post-mortem starts from: which injected faults are
    # still in the flight recorder, and which op_ids were in flight.
    faults = doc.get("faults", [])
    suspects = doc.get("suspect_op_ids", [])
    if faults:
        print(f"  injected faults in window ({len(faults)}):")
        for f in faults:
            print(f"    {fmt_ns(f['t_ns']):>10}  {f['name']}")
    else:
        print("  injected faults in window: none recorded")
    if suspects:
        print(f"  suspect op_ids in flight at fault time: "
              f"{', '.join(map(str, suspects))}")

    rec = doc.get("flightrec")
    if rec:
        rings = rec.get("rings", {})
        parts = ", ".join(f"{name} {len(ring.get('entries', []))}"
                          f" (dropped {ring.get('dropped', 0):,})"
                          for name, ring in sorted(rings.items()))
        print(f"  flight recorder: {parts or 'empty'}  "
              f"[total dropped {rec.get('dropped', 0):,}]")

    timeline = doc.get("timeline")
    if timeline:
        print(f"  timeline tail: {len(timeline.get('points', []))} samples x "
              f"{len(timeline.get('series', []))} series")
    for op in doc.get("slowest_ops", []):
        print(f"  slow op {op['op_id']}: e2e {fmt_ns(op['e2e_ns'])}  "
              f"bottleneck {op.get('bottleneck', '-')}")


def incidents(paths):
    """Render incident bundles; v3 reports render their health section."""
    for i, path in enumerate(paths):
        if i:
            print()
        with open(path) as f:
            doc = json.load(f)
        schema = doc.get("schema")
        if schema == INCIDENT_SCHEMA:
            show_incident(path, doc)
        elif schema in SCHEMAS:
            print(f"== {path} ==")
            health = doc.get("health")
            if health:
                show_health(health)
            else:
                print("no health section (report predates slo.* rules "
                      "or none were configured)")
        else:
            sys.exit(f"{path}: unsupported schema {schema!r} (want "
                     f"{INCIDENT_SCHEMA} or a report schema)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    p_show = sub.add_parser("show", help="pretty-print one report")
    p_show.add_argument("report")
    p_diff = sub.add_parser("diff", help="compare two reports")
    p_diff.add_argument("baseline")
    p_diff.add_argument("candidate")
    p_inc = sub.add_parser(
        "incidents", help="render hpcbb.incident.v1 bundles / health sections")
    p_inc.add_argument("bundles", nargs="+")
    args = parser.parse_args()

    if args.command == "show":
        show(load(args.report))
    elif args.command == "incidents":
        incidents(args.bundles)
    else:
        diff(load(args.baseline), load(args.candidate))


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
