#!/usr/bin/env bash
# Full verification: build and test the default (RelWithDebInfo) and the
# Sanitize (ASan+UBSan) configurations.
#
#   tools/check.sh            # both configurations
#   tools/check.sh --fast     # default configuration only
#   tools/check.sh --chaos    # chaos-labeled tests + seeded bench_a4_chaos
#                             # smoke, both under ASan+UBSan
#   tools/check.sh --gate     # perf-regression gate: bench_m1_kv_micro +
#                             # bench_f1_kv_latency vs bench/baselines/,
#                             # plus an injected-regression self-test
#
# Build trees: build/ and build-sanitize/ at the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fast=0
chaos=0
gate=0
[[ "${1:-}" == "--fast" ]] && fast=1
[[ "${1:-}" == "--chaos" ]] && chaos=1
[[ "${1:-}" == "--gate" ]] && gate=1

if [[ "${gate}" == 1 ]]; then
  echo "== gate: configure (RelWithDebInfo) =="
  cmake -B build -S .
  echo "== gate: build gated benches =="
  cmake --build build -j "${jobs}" --target bench_f1_kv_latency bench_m1_kv_micro
  out="$(mktemp -d)"
  echo "== gate: bench_f1_kv_latency (simulated time, deterministic) =="
  HPCBB_BENCH_OUT="${out}" ./build/bench/bench_f1_kv_latency --gate
  echo "== gate: bench_m1_kv_micro (real time, loose tolerances) =="
  HPCBB_BENCH_OUT="${out}" ./build/bench/bench_m1_kv_micro --gate \
    --benchmark_min_time=0.02
  echo "== gate: self-test (an injected 2x regression must fail) =="
  if python3 tools/bench_gate.py check bench/baselines/f1.json \
      "${out}/f1_result.json" --scale-candidate 2.0 >/dev/null; then
    echo "gate self-test FAILED: a 2x regression passed the gate" >&2
    exit 1
  fi
  echo "perf gate passed (and the self-test regression was caught)"
  exit 0
fi

if [[ "${chaos}" == 1 ]]; then
  echo "== chaos: configure (Sanitize) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Sanitize
  echo "== chaos: build =="
  cmake --build build-sanitize -j "${jobs}" --target resilience_test repl_test integrity_test master_recovery_test health_test bench_a4_chaos
  echo "== chaos: ctest -L chaos =="
  ctest --test-dir build-sanitize --output-on-failure -j "${jobs}" -L chaos
  echo "== chaos: bench_a4_chaos smoke (seeded) =="
  ./build-sanitize/bench/bench_a4_chaos smoke=1 faults.seed=1
  echo "chaos checks passed"
  exit 0
fi

run_config() {
  local name="$1" dir="$2" build_type="$3"
  echo "== ${name}: configure (${build_type}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}"
  echo "== ${name}: build =="
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "default" build RelWithDebInfo

if [[ "${fast}" == 0 ]]; then
  run_config "sanitize" build-sanitize Sanitize
fi

echo "all checks passed"
