#!/usr/bin/env bash
# Full verification: build and test the default (RelWithDebInfo) and the
# Sanitize (ASan+UBSan) configurations.
#
#   tools/check.sh            # both configurations
#   tools/check.sh --fast     # default configuration only
#   tools/check.sh --chaos    # chaos-labeled tests + seeded bench_a4_chaos
#                             # smoke, both under ASan+UBSan
#
# Build trees: build/ and build-sanitize/ at the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fast=0
chaos=0
[[ "${1:-}" == "--fast" ]] && fast=1
[[ "${1:-}" == "--chaos" ]] && chaos=1

if [[ "${chaos}" == 1 ]]; then
  echo "== chaos: configure (Sanitize) =="
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Sanitize
  echo "== chaos: build =="
  cmake --build build-sanitize -j "${jobs}" --target resilience_test repl_test bench_a4_chaos
  echo "== chaos: ctest -L chaos =="
  ctest --test-dir build-sanitize --output-on-failure -j "${jobs}" -L chaos
  echo "== chaos: bench_a4_chaos smoke (seeded) =="
  ./build-sanitize/bench/bench_a4_chaos smoke=1 faults.seed=1
  echo "chaos checks passed"
  exit 0
fi

run_config() {
  local name="$1" dir="$2" build_type="$3"
  echo "== ${name}: configure (${build_type}) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}"
  echo "== ${name}: build =="
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "default" build RelWithDebInfo

if [[ "${fast}" == 0 ]]; then
  run_config "sanitize" build-sanitize Sanitize
fi

echo "all checks passed"
