// A3 — sustained overload and flow control: BB-Async writers drive a burst
// several times larger than the buffer, i.e. the KV servers ingest far
// faster than Lustre can drain. The flow-control subsystem must (1) keep
// dirty+reserved bytes bounded by the high watermark (± one in-flight
// block), (2) delay — never fail — every write, and (3) converge the
// sustained throughput toward the Lustre drain rate while clean blocks are
// evicted to make room. Reports throughput, p99 admission stall, and the
// dirty-bytes bound check per overload factor.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using sim::Task;

struct OverloadPoint {
  double write_mbps = 0;
  sim::SimTime p99_stall_ns = 0;
  std::uint64_t stalls = 0;
  std::uint64_t peak_dirty = 0;
  std::uint64_t high_bytes = 0;
  std::uint64_t block_size = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t urgent_flushes = 0;
  std::uint64_t lost_blocks = 0;
  bool all_acked = false;

  [[nodiscard]] bool dirty_bounded() const {
    return peak_dirty <= high_bytes + block_size;
  }
};

OverloadPoint run_case(std::uint64_t buffer_total, std::uint64_t dataset) {
  cluster::ClusterConfig config =
      hpcbb::bench::default_config(bb::Scheme::kAsync);
  config.kv_memory_per_server = buffer_total / config.kv_servers;
  Cluster cluster(config);
  OverloadPoint point;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, std::uint64_t data_total,
                  OverloadPoint& out) -> Task<void> {
        const auto kind = cluster::FsKind::kBurstBuffer;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = data_total / 8;
        auto result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!result.is_ok()) co_return;
        out.all_acked = true;  // every write completed (delayed, not failed)
        out.write_mbps = result.value().aggregate_mbps;
        co_await c.bb_master().wait_all_flushed();
      }(cluster, dataset, point));

  const auto& fc = cluster.bb_master().flow_control();
  auto& metrics = cluster.sim().metrics();
  // No stalls at low offered load is a real 0, not "no data" — fold the
  // never-recorded case back to 0 explicitly.
  point.p99_stall_ns =
      metrics.histogram_quantile("flowctl.stall_ns", 0.99).value_or(0);
  point.stalls = metrics.counter("flowctl.stalls").get();
  point.peak_dirty = fc.peak_dirty_bytes();
  point.high_bytes = fc.high_bytes();
  point.block_size = cluster.bb_master().params().block_size;
  point.evicted_bytes = metrics.counter("flowctl.evicted_bytes").get();
  point.urgent_flushes = metrics.counter("flowctl.urgent_flushes").get();
  point.lost_blocks = cluster.bb_master().lost_blocks();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("A3", "flow control under sustained overload (BB-Async)",
               "dirty bytes stay bounded by the high watermark and writes "
               "are delayed, never rejected, as the burst exceeds the "
               "buffer by 2-4x");
  hpcbb::bench::JsonResult result(
      "a3", "flow control under sustained overload (BB-Async)");

  constexpr std::uint64_t kBufferTotal = 512 * MiB;
  const std::vector<double> overload_factors = {0.5, 1.0, 2.0, 4.0};

  std::printf("\n%-10s  %10s  %12s  %8s  %14s  %12s  %8s  %9s  %6s\n",
              "burst/buf", "MB/s", "p99 stall", "stalls", "peak dirty",
              "evicted", "urgent", "bounded", "acked");
  bool all_ok = true;
  for (const double factor : overload_factors) {
    const auto dataset = static_cast<std::uint64_t>(
        factor * static_cast<double>(kBufferTotal));
    const OverloadPoint point = run_case(kBufferTotal, dataset);
    std::printf(
        "%-10.1f  %10.0f  %12s  %8llu  %14s  %12s  %8llu  %9s  %6s\n", factor,
        point.write_mbps, format_duration_ns(point.p99_stall_ns).c_str(),
        static_cast<unsigned long long>(point.stalls),
        format_bytes(point.peak_dirty).c_str(),
        format_bytes(point.evicted_bytes).c_str(),
        static_cast<unsigned long long>(point.urgent_flushes),
        point.dirty_bounded() ? "yes" : "NO",
        point.all_acked && point.lost_blocks == 0 ? "yes" : "NO");
    all_ok = all_ok && point.dirty_bounded() && point.all_acked &&
             point.lost_blocks == 0;
    char x[16];
    std::snprintf(x, sizeof x, "%.1f", factor);
    result.add("write-mbps", x, point.write_mbps);
    result.add("p99-stall-ns", x, static_cast<double>(point.p99_stall_ns));
    result.add("stalls", x, static_cast<double>(point.stalls));
    result.add("peak-dirty-bytes", x, static_cast<double>(point.peak_dirty));
    result.add("evicted-bytes", x, static_cast<double>(point.evicted_bytes));
  }
  std::printf("\n%s: dirty bytes %s bounded by the high watermark "
              "(+1 block) and all writes acked\n",
              all_ok ? "PASS" : "FAIL", all_ok ? "stayed" : "were NOT");
  const int gate_rc = hpcbb::bench::finish(result, argc, argv);
  return all_ok ? gate_rc : 1;
}
