// F3 — TestDFSIO write throughput: HDFS vs Lustre vs the three burst-buffer
// schemes across dataset sizes. Headline claim: BB write throughput up to
// 2.6x HDFS and 1.5x Lustre.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using hpcbb::bench::SystemCase;
using sim::Task;

double run_case(const SystemCase& system, std::uint32_t files,
                std::uint64_t file_size) {
  Cluster cluster(hpcbb::bench::default_config(system.scheme));
  mapred::DfsioParams params;
  params.files = files;
  params.file_size = file_size;
  double mbps = 0;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, cluster::FsKind kind, mapred::DfsioParams p,
                  double& out) -> Task<void> {
        auto result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), p);
        if (result.is_ok()) out = result.value().aggregate_mbps;
      }(cluster, system.kind, params, mbps));
  return mbps;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F3", "TestDFSIO write throughput (aggregate MB/s, 8 nodes)",
               "write up to 2.6x over HDFS and 1.5x over Lustre");
  hpcbb::bench::JsonResult result(
      "f3", "TestDFSIO write throughput (aggregate MB/s, 8 nodes)");

  // Scaled-down sweep: paper sweeps 20-80 GB on 128 MiB blocks; we run
  // 0.25-1 GB on 32 MiB blocks (EXPERIMENTS.md "Scaling").
  const std::vector<std::uint64_t> file_sizes = {32 * MiB, 64 * MiB, 128 * MiB};
  constexpr std::uint32_t kFiles = 8;

  std::printf("\n%-12s", "dataset");
  for (const auto& system : hpcbb::bench::all_systems()) {
    std::printf("  %9s", system.label);
  }
  std::printf("   BB-Async/HDFS  BB-Async/Lustre\n");

  for (const std::uint64_t file_size : file_sizes) {
    std::printf("%-12s", hpcbb::format_bytes(kFiles * file_size).c_str());
    std::map<std::string, double> mbps;
    for (const auto& system : hpcbb::bench::all_systems()) {
      mbps[system.label] = run_case(system, kFiles, file_size);
      std::printf("  %9.0f", mbps[system.label]);
      result.add(std::string(system.label) + "-mbps",
                 hpcbb::format_bytes(kFiles * file_size), mbps[system.label]);
    }
    std::printf("   %13.2fx  %14.2fx\n",
                hpcbb::bench::ratio(mbps["BB-Async"], mbps["HDFS"]),
                hpcbb::bench::ratio(mbps["BB-Async"], mbps["Lustre"]));
  }
  return hpcbb::bench::finish(result, argc, argv);
}
