// F10 — weak scaling: aggregate DFSIO write/read throughput as the cluster
// grows, fixed data per node. The burst-buffer advantage must hold (or
// grow) with scale, since the KV tier scales with the cluster while Lustre
// stays fixed.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using hpcbb::bench::SystemCase;
using sim::Task;

struct ScalingPoint {
  double write_mbps = 0;
  double read_mbps = 0;
};

ScalingPoint run_case(const SystemCase& system, std::uint32_t nodes,
                      std::uint64_t bytes_per_node) {
  cluster::ClusterConfig config = hpcbb::bench::default_config(system.scheme);
  config.compute_nodes = nodes;
  config.kv_servers = std::max(2u, nodes / 2);  // BB tier scales with nodes
  Cluster cluster(config);
  ScalingPoint point;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, cluster::FsKind kind, std::uint64_t per_node,
                  ScalingPoint& out) -> Task<void> {
        mapred::DfsioParams params;
        params.files = static_cast<std::uint32_t>(c.compute_nodes().size());
        params.file_size = per_node;
        auto write_result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!write_result.is_ok()) co_return;
        out.write_mbps = write_result.value().aggregate_mbps;
        auto read_result = co_await mapred::dfsio_read(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (read_result.is_ok()) out.read_mbps = read_result.value().aggregate_mbps;
      }(cluster, system.kind, bytes_per_node, point));
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F10", "weak scaling: aggregate MB/s, 64 MiB per node",
               "BB advantage holds as the cluster grows");
  hpcbb::bench::JsonResult result(
      "f10", "weak scaling: aggregate MB/s, 64 MiB per node");

  const std::vector<std::uint32_t> node_counts = {4, 8, 16};
  const std::vector<hpcbb::bench::SystemCase> systems = {
      {"HDFS", hpcbb::bench::FsKind::kHdfs, hpcbb::bb::Scheme::kAsync},
      {"Lustre", hpcbb::bench::FsKind::kLustre, hpcbb::bb::Scheme::kAsync},
      {"BB-Async", hpcbb::bench::FsKind::kBurstBuffer,
       hpcbb::bb::Scheme::kAsync},
  };

  std::printf("\n%-8s", "nodes");
  for (const auto& system : systems) {
    std::printf("  %9s-wr %9s-rd", system.label, system.label);
  }
  std::printf("\n");
  for (const std::uint32_t nodes : node_counts) {
    std::printf("%-8u", nodes);
    for (const auto& system : systems) {
      const ScalingPoint point = run_case(system, nodes, 64 * MiB);
      std::printf("  %12.0f %12.0f", point.write_mbps, point.read_mbps);
      result.add(std::string(system.label) + "-write-mbps", nodes,
                 point.write_mbps);
      result.add(std::string(system.label) + "-read-mbps", nodes,
                 point.read_mbps);
    }
    std::printf("\n");
  }
  return hpcbb::bench::finish(result, argc, argv);
}
