// F7 — Scheme ablation: the three burst-buffer schemes against the axes the
// paper designed them for — write ack time (I/O), map locality
// (data-locality), and the durability window (fault-tolerance).
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using sim::SimTime;
using sim::Task;

struct SchemeOutcome {
  SimTime write_ack = 0;         // DFSIO write makespan (ack-based)
  SimTime durability_window = 0; // last ack -> all blocks durable
  double locality = 0;           // map locality of a follow-up sort
  std::uint64_t local_bytes = 0; // node-local storage consumed
};

SchemeOutcome run_scheme(bb::Scheme scheme) {
  Cluster cluster(hpcbb::bench::default_config(scheme));
  SchemeOutcome outcome;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, SchemeOutcome& out) -> Task<void> {
        const auto kind = cluster::FsKind::kBurstBuffer;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = 64 * MiB;
        auto write_result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!write_result.is_ok()) co_return;
        out.write_ack = write_result.value().elapsed_ns;

        const SimTime ack_done = c.sim().now();
        co_await c.bb_master().wait_all_flushed();
        out.durability_window = c.sim().now() - ack_done;
        out.local_bytes = c.total_local_bytes_used();

        mapred::GenerateParams gen;
        gen.files = 8;
        gen.records_per_file = 320000;
        auto generated = co_await mapred::generate_records_input(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
        if (!generated.is_ok()) co_return;
        std::vector<std::string> inputs;
        for (std::uint32_t i = 0; i < 8; ++i) {
          inputs.push_back(gen.dir + "/part-" + std::to_string(i));
        }
        auto runner = c.make_runner(kind);
        mapred::SortJob job(16);
        auto stats = co_await runner->run(job, inputs, "/out/sort");
        if (stats.is_ok()) out.locality = stats.value().locality_fraction();
      }(cluster, outcome));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F7",
               "scheme ablation: I/O vs data-locality vs fault-tolerance",
               "three schemes trade write latency, locality, durability");
  hpcbb::bench::JsonResult result(
      "f7", "scheme ablation: I/O vs data-locality vs fault-tolerance");

  std::printf("\n%-10s  %12s  %18s  %14s  %12s\n", "scheme",
              "write(512MiB)", "durability window", "map locality",
              "local bytes");
  for (const bb::Scheme scheme :
       {bb::Scheme::kAsync, bb::Scheme::kSync, bb::Scheme::kLocal}) {
    const SchemeOutcome outcome = run_scheme(scheme);
    const std::string label(to_string(scheme));
    std::printf("%-10s  %11.2fs  %17.2fs  %13.0f%%  %12s\n", label.c_str(),
                hpcbb::ns_to_sec(outcome.write_ack),
                hpcbb::ns_to_sec(outcome.durability_window),
                100.0 * outcome.locality,
                hpcbb::format_bytes(outcome.local_bytes).c_str());
    result.add("write-ack-s", label, hpcbb::ns_to_sec(outcome.write_ack));
    result.add("durability-window-s", label,
               hpcbb::ns_to_sec(outcome.durability_window));
    result.add("map-locality", label, outcome.locality);
    result.add("local-bytes", label,
               static_cast<double>(outcome.local_bytes));
  }
  std::printf("\nexpected shape: Async fastest ack but longest window; Sync "
              "zero window,\nslowest ack; Local adds locality and a RAM-disk "
              "copy for modest local storage.\n");
  return hpcbb::bench::finish(result, argc, argv);
}
