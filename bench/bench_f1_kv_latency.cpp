// F1 — KV operation latency: RDMA vs IPoIB vs 10GigE vs 1GigE, set/get
// latency across value sizes. The enabling microbenchmark of the paper:
// native-verbs KV ops are roughly an order of magnitude faster than the
// socket paths for small and mid-size values.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "kvstore/client.h"
#include "kvstore/server.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::SimTime;
using sim::Task;

struct OpLatency {
  SimTime set_ns = 0;
  SimTime get_ns = 0;
};

OpLatency measure(net::TransportKind kind, std::uint64_t value_size) {
  sim::Simulation sim;
  net::Fabric fabric(sim, 2, net::FabricParams{});
  net::Transport transport(fabric, net::transport_preset(kind));
  net::RpcHub hub(transport);
  kv::ServerParams server_params;
  server_params.store.memory_budget = 256 * MiB;
  kv::Server server(hub, 1, server_params);
  kv::Client client(hub, 0, {1});

  OpLatency result;
  sim.spawn([](sim::Simulation& s, kv::Client& c, std::uint64_t size,
               OpLatency& out) -> Task<void> {
    // Warm-up op to populate connection-independent state.
    (void)co_await c.set("warm", make_bytes(Bytes(64, 1)));
    constexpr int kReps = 20;
    SimTime set_total = 0, get_total = 0;
    for (int i = 0; i < kReps; ++i) {
      const std::string key = "key-" + std::to_string(i);
      SimTime t0 = s.now();
      (void)co_await c.set(key, make_bytes(Bytes(size, 0xAA)));
      set_total += s.now() - t0;
      t0 = s.now();
      (void)co_await c.get(key);
      get_total += s.now() - t0;
    }
    out.set_ns = set_total / kReps;
    out.get_ns = get_total / kReps;
  }(sim, client, value_size, result));
  sim.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F1", "KV store op latency by transport and value size",
               "RDMA ops ~an order of magnitude faster than socket paths");
  hpcbb::bench::JsonResult result(
      "f1", "KV store op latency by transport and value size");

  const std::vector<std::pair<const char*, hpcbb::net::TransportKind>>
      transports = {{"RDMA", hpcbb::net::TransportKind::kRdma},
                    {"IPoIB", hpcbb::net::TransportKind::kIpoib},
                    {"10GigE", hpcbb::net::TransportKind::kTenGigE},
                    {"1GigE", hpcbb::net::TransportKind::kGigE}};
  const std::vector<std::uint64_t> sizes = {1 * KiB,  4 * KiB,   16 * KiB,
                                            64 * KiB, 256 * KiB, 1 * MiB};

  std::printf("\n%-10s", "value");
  for (const auto& [label, kind] : transports) {
    std::printf("  %10s-set %10s-get", label, label);
  }
  std::printf("   RDMA-get-speedup-vs-IPoIB\n");

  for (const std::uint64_t size : sizes) {
    std::printf("%-10s", hpcbb::format_bytes(size).c_str());
    double rdma_get = 0, ipoib_get = 0;
    for (const auto& [label, kind] : transports) {
      const OpLatency lat = measure(kind, size);
      std::printf("  %11.1fus %11.1fus",
                  static_cast<double>(lat.set_ns) / 1000.0,
                  static_cast<double>(lat.get_ns) / 1000.0);
      const std::string x = hpcbb::format_bytes(size);
      result.add(std::string(label) + "-set-ns", x,
                 static_cast<double>(lat.set_ns));
      result.add(std::string(label) + "-get-ns", x,
                 static_cast<double>(lat.get_ns));
      if (std::string(label) == "RDMA") rdma_get = static_cast<double>(lat.get_ns);
      if (std::string(label) == "IPoIB") ipoib_get = static_cast<double>(lat.get_ns);
    }
    std::printf("   %.1fx\n", hpcbb::bench::ratio(ipoib_get, rdma_get));
  }
  return hpcbb::bench::finish(result, argc, argv);
}
