// F11 — buffer capacity sensitivity: BB-Async write throughput as the KV
// memory shrinks relative to the burst. With ample memory the buffer
// absorbs the whole burst at RDMA speed; as it shrinks, admission control +
// eviction backpressure throttle the writer toward the Lustre drain rate.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using sim::Task;

struct CapacityPoint {
  double write_mbps = 0;
  std::uint64_t backpressure_retries = 0;
  std::uint64_t evictions = 0;
};

CapacityPoint run_case(std::uint64_t buffer_total, std::uint64_t dataset) {
  cluster::ClusterConfig config =
      hpcbb::bench::default_config(bb::Scheme::kAsync);
  config.kv_memory_per_server = buffer_total / config.kv_servers;
  Cluster cluster(config);
  CapacityPoint point;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, std::uint64_t data_total,
                  CapacityPoint& out) -> Task<void> {
        const auto kind = cluster::FsKind::kBurstBuffer;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = data_total / 8;
        auto result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!result.is_ok()) co_return;
        out.write_mbps = result.value().aggregate_mbps;
        out.backpressure_retries =
            c.sim().metrics().counter_value("bb.store.backpressure_retries");
        for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
          out.evictions += c.kv_server(i).store().stats().evictions;
        }
      }(cluster, dataset, point));
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F11", "buffer capacity sensitivity (BB-Async, 1 GiB burst)",
               "throughput degrades gracefully toward the flush rate as the "
               "buffer shrinks below the burst size");
  hpcbb::bench::JsonResult result(
      "f11", "buffer capacity sensitivity (BB-Async, 1 GiB burst)");

  constexpr std::uint64_t kDataset = 1 * GiB;
  const std::vector<double> capacity_ratios = {0.25, 0.5, 1.0, 2.0, 4.0};

  std::printf("\n%-16s  %10s  %20s  %10s\n", "buffer/burst", "MB/s",
              "backpressure retries", "evictions");
  for (const double ratio : capacity_ratios) {
    const auto buffer_total =
        static_cast<std::uint64_t>(ratio * static_cast<double>(kDataset));
    const CapacityPoint point = run_case(buffer_total, kDataset);
    std::printf("%-16.2f  %10.0f  %20llu  %10llu\n", ratio, point.write_mbps,
                static_cast<unsigned long long>(point.backpressure_retries),
                static_cast<unsigned long long>(point.evictions));
    char x[16];
    std::snprintf(x, sizeof x, "%.2f", ratio);
    result.add("write-mbps", x, point.write_mbps);
    result.add("backpressure-retries", x,
               static_cast<double>(point.backpressure_retries));
    result.add("evictions", x, static_cast<double>(point.evictions));
  }
  return hpcbb::bench::finish(result, argc, argv);
}
