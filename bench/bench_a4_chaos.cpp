// A4 — chaos: DFSIO and Sort under rolling KV-server crashes/restarts plus
// transient RPC drop/delay faults, per burst-buffer scheme, with the full
// resilience stack enabled (RPC retry, heartbeat failure detection, ring
// failover, degraded-mode write-through).
//
// Reported per scheme (and as hpcbb.bench.v1 JSON):
//   * data loss: blocks lost / recovered, files fully readable after chaos
//     (the FT schemes must report zero loss and every file readable);
//   * degraded-vs-healthy throughput: the same workload on a healthy
//     cluster with identical resilience settings is the baseline;
//   * recovery time: total time the master spent in degraded mode
//     (suspicion to all-peers-live), from bb.degraded_window_ns;
//   * resilience counters: retry attempts/recoveries, ring failovers,
//     server restarts, injected faults.
//
// Accepts key=value overrides (e.g. smoke=1 faults.seed=7 files=4). The
// whole chaos schedule is deterministic in faults.seed.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "faults/injector.h"
#include "net/retry.h"
#include "obs/attribution.h"
#include "obs/flightrec.h"
#include "obs/health.h"
#include "obs/sampler.h"
#include "sim/trace.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using hpcbb::bench::ClusterConfig;
using sim::SimTime;
using sim::Task;

struct ChaosKnobs {
  bool smoke = false;
  std::uint32_t files = 8;
  std::uint64_t file_size = 64 * MiB;
  std::uint64_t records_per_file = 80000;  // 8 MiB of sort input per file
  faults::InjectorParams faults;
};

ChaosKnobs knobs_from(const Properties& props) {
  ChaosKnobs k;
  k.smoke = props.get_bool_or("smoke", false);
  if (k.smoke) {
    k.files = 2;
    k.file_size = 8 * MiB;
    k.records_per_file = 10000;
  }
  k.files = static_cast<std::uint32_t>(props.get_u64_or("files", k.files));
  k.file_size = props.get_u64_or("file.size", k.file_size);
  k.records_per_file =
      props.get_u64_or("sort.records", k.records_per_file);

  faults::InjectorParams faults;
  faults.enabled = true;
  faults.seed = 1;
  faults.rpc_drop_prob = 0.002;
  faults.rpc_delay_prob = 0.01;
  faults.rpc_delay_ns = 1 * duration::ms;
  faults.crash_first_ns = k.smoke ? 4 * duration::ms : 60 * duration::ms;
  faults.crash_period_ns = k.smoke ? 0 : 500 * duration::ms;
  faults.crash_downtime_ns =
      k.smoke ? 50 * duration::ms : 200 * duration::ms;
  faults.crash_count = k.smoke ? 1 : 2;
  k.faults = faults::InjectorParams::from_properties(props, faults);
  return k;
}

// Chaos and healthy runs share identical resilience settings; only the
// injector differs, so the throughput delta is attributable to the faults.
ClusterConfig base_config(bb::Scheme scheme, const Properties& props) {
  ClusterConfig config = hpcbb::bench::default_config(scheme);
  net::RetryPolicy retry;
  retry.max_attempts = 4;
  // The full-geometry write burst (8 x 64 MiB) queues individual RPCs for
  // longer than the smoke run's aggressive deadline — a 20 ms per-attempt
  // cutoff makes even the healthy baseline time out. Crash downtime is
  // 200 ms, so the longer deadline still detects dead servers in time.
  retry.timeout_ns = props.get_bool_or("smoke", false) ? 20 * duration::ms
                                                       : 200 * duration::ms;
  config.retry = net::RetryPolicy::from_properties(props, retry);
  config.kv_client.failover = true;
  // kv.failover / kv.repl.factor / kv.repl.ack overrides apply to every run.
  config.kv_client.apply_properties(props);
  config.bb_heartbeat_interval_ns =
      props.get_duration_ns_or("bb.heartbeat", 10 * duration::ms);
  return config;
}

struct Outcome {
  bool write_ok = false;
  double write_mbps = 0;
  double read_mbps = 0;
  std::uint64_t blocks_lost = 0;
  std::uint64_t blocks_recovered = 0;
  std::uint32_t files_readable = 0;
  std::uint32_t files_total = 0;
  double recovery_s = 0;
  std::uint64_t degraded_windows = 0;
  std::uint64_t retry_attempts = 0;
  std::uint64_t retry_recovered = 0;
  std::uint64_t failovers = 0;
  std::uint64_t restarts = 0;
  std::uint64_t faults_injected = 0;
  double sort_s = 0;
  bool sorted = false;
  // Replication subsystem (kv.repl.*); all zero at factor 1.
  std::uint64_t repl_repair_bytes = 0;
  std::uint64_t repl_repair_chunks = 0;
  std::uint64_t repl_repair_failed = 0;
  std::uint64_t repl_anti_entropy_chunks = 0;
  std::uint64_t repl_replica_reads = 0;
  std::uint64_t under_replicated_peak = 0;
  HistogramSnapshot repair_hist{};
  HistogramSnapshot anti_entropy_hist{};
  // Integrity subsystem (kv.integrity.* / kv.scrub.* / quarantine).
  std::uint64_t integ_detected = 0;
  std::uint64_t integ_repaired = 0;
  std::uint64_t integ_unrepairable = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_chunks = 0;
  // Readbacks that returned OK with wrong bytes: must be zero at any R —
  // corruption may fail a read loudly, never pass through silently.
  std::uint64_t silent_corruptions = 0;
  // Master metadata durability (bb.md.*); all zero unless the master
  // crashed with journaling on.
  std::uint64_t md_recovered_files = 0;
  std::uint64_t md_replayed_records = 0;
  std::uint64_t md_restarts = 0;
  std::uint64_t md_journal_records = 0;
  std::uint64_t md_checkpoints = 0;
  std::uint64_t md_recovery_errors = 0;
  HistogramSnapshot md_recovery_hist{};
};

Task<void> chaos_task(Cluster& c, const ChaosKnobs& k, Outcome& out) {
  const auto kind = cluster::FsKind::kBurstBuffer;
  sim::Simulation& sim = c.sim();

  // Phase 1: DFSIO write burst (the crash schedule fires mid-burst).
  mapred::DfsioParams dfsio;
  dfsio.files = k.files;
  dfsio.file_size = k.file_size;
  dfsio.verify_on_read = true;
  auto write_result = co_await mapred::dfsio_write(
      c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), dfsio);
  out.write_ok = write_result.is_ok();
  if (write_result.is_ok()) {
    out.write_mbps = write_result.value().aggregate_mbps;
  }
  co_await c.bb_master().wait_all_flushed();
  out.blocks_lost = c.bb_master().lost_blocks();
  out.blocks_recovered = c.bb_master().recovered_blocks();

  // Phase 2: verified read-back of every file, from rotated nodes.
  out.files_total = k.files;
  const SimTime read_start = sim.now();
  std::uint64_t read_bytes = 0;
  for (std::uint32_t i = 0; i < k.files; ++i) {
    const std::string path = dfsio.dir + "/io_file_" + std::to_string(i);
    auto reader = co_await c.filesystem(kind).open(
        path, c.compute_nodes()[(i + 1) % c.compute_nodes().size()]);
    if (!reader.is_ok()) continue;
    bool all_ok = true;
    const std::uint64_t size = reader.value()->size();
    for (std::uint64_t off = 0; off < size && all_ok; off += 4 * MiB) {
      const std::uint64_t len = std::min<std::uint64_t>(4 * MiB, size - off);
      auto data = co_await reader.value()->read(off, len);
      all_ok = data.is_ok() &&
               verify_pattern(fnv1a(path), off, data.value());
      if (all_ok) read_bytes += len;
    }
    if (all_ok) ++out.files_readable;
  }
  const SimTime read_ns = sim.now() - read_start;
  out.read_mbps = read_ns == 0
                      ? 0
                      : static_cast<double>(read_bytes) / MiB /
                            (static_cast<double>(read_ns) / duration::sec);

  // Phase 3: Sort with the fault schedule still armed (RPC faults apply to
  // the whole run; later crashes land here in the full schedule).
  mapred::GenerateParams gen;
  gen.files = k.files;
  gen.records_per_file = k.records_per_file;
  auto generated = co_await mapred::generate_records_input(
      c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
  if (generated.is_ok()) {
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < k.files; ++i) {
      inputs.push_back(gen.dir + "/part-" + std::to_string(i));
    }
    auto runner = c.make_runner(kind);
    mapred::SortJob job(8);
    const SimTime sort_start = sim.now();
    auto stats = co_await runner->run(job, inputs, "/out/chaos_sort");
    if (stats.is_ok()) {
      out.sort_s = ns_to_sec(sim.now() - sort_start);
      auto reader = co_await c.filesystem(kind).open("/out/chaos_sort/part-0",
                                                     c.compute_nodes()[0]);
      if (reader.is_ok()) {
        auto data = co_await reader.value()->read(0, reader.value()->size());
        out.sorted = data.is_ok() && mapred::records_sorted(data.value());
      }
    }
  }

  co_await c.bb_master().wait_all_flushed();

  // Let the cluster heal before stopping the prober: the recovery-time
  // measurement needs the last scheduled restart plus a successful probe
  // round, even when the workload finishes inside the downtime window.
  const faults::InjectorParams& f = c.injector().params();
  const SimTime schedule_end =
      f.crash_first_ns +
      (f.crash_count > 0 ? f.crash_count - 1 : 0) * f.crash_period_ns +
      f.crash_downtime_ns;
  if (f.enabled && sim.now() < schedule_end) {
    co_await sim.delay_until(schedule_end);
  }
  const SimTime probe = c.config().bb_heartbeat_interval_ns;
  for (int i = 0; i < 10 && c.bb_master().degraded() && probe > 0; ++i) {
    co_await sim.delay(probe);
  }
  c.bb_master().stop_heartbeat();
}

// Corruption storm: DFSIO write burst, scheduled corruption across the KV
// slabs and OSS devices, the scrubber sweeping in the background, then a
// verified read-back of every byte. Reads that fail are accounted; reads
// that return wrong bytes count as silent corruption (must never happen).
Task<void> integrity_task(Cluster& c, const ChaosKnobs& k, Outcome& out) {
  const auto kind = cluster::FsKind::kBurstBuffer;
  sim::Simulation& sim = c.sim();

  mapred::DfsioParams dfsio;
  dfsio.files = k.files;
  dfsio.file_size = k.file_size;
  dfsio.verify_on_read = true;
  auto write_result = co_await mapred::dfsio_write(
      c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), dfsio);
  out.write_ok = write_result.is_ok();
  if (write_result.is_ok()) {
    out.write_mbps = write_result.value().aggregate_mbps;
  } else {
    // A failed burst leaves nothing to corrupt or scrub — say so instead of
    // letting the integrity table read as a vacuous pass.
    std::fprintf(stderr, "warning: integrity DFSIO write failed: %s\n",
                 write_result.status().to_string().c_str());
  }
  co_await c.bb_master().wait_all_flushed();

  // Let the whole corruption schedule land, then give the scrubber two full
  // passes over the aftermath.
  const faults::InjectorParams& f = c.injector().params();
  const SimTime storm_end =
      f.corrupt_first_ns +
      (f.corrupt_count > 0 ? f.corrupt_count - 1 : 0) * f.corrupt_period_ns;
  if (f.enabled && sim.now() < storm_end) {
    co_await sim.delay_until(storm_end);
  }
  if (const SimTime interval = c.config().bb_scrub.interval_ns;
      interval > 0) {
    co_await sim.delay(2 * interval);
  }

  out.files_total = k.files;
  std::uint64_t read_bytes = 0;
  const SimTime read_start = sim.now();
  for (std::uint32_t i = 0; i < k.files; ++i) {
    const std::string path = dfsio.dir + "/io_file_" + std::to_string(i);
    auto reader = co_await c.filesystem(kind).open(
        path, c.compute_nodes()[(i + 1) % c.compute_nodes().size()]);
    if (!reader.is_ok()) continue;
    bool all_ok = true;
    const std::uint64_t size = reader.value()->size();
    for (std::uint64_t off = 0; off < size; off += 4 * MiB) {
      const std::uint64_t len = std::min<std::uint64_t>(4 * MiB, size - off);
      auto data = co_await reader.value()->read(off, len);
      if (!data.is_ok()) {
        all_ok = false;  // loud failure (kDataLoss on a quarantined block)
        continue;
      }
      if (!verify_pattern(fnv1a(path), off, data.value())) {
        all_ok = false;
        ++out.silent_corruptions;  // OK status with wrong bytes: never allowed
        continue;
      }
      read_bytes += len;
    }
    if (all_ok) ++out.files_readable;
  }
  const SimTime read_ns = sim.now() - read_start;
  out.read_mbps = read_ns == 0
                      ? 0
                      : static_cast<double>(read_bytes) / MiB /
                            (static_cast<double>(read_ns) / duration::sec);

  co_await c.bb_master().wait_all_flushed();
  c.bb_master().stop_heartbeat();
}

// Master crash mid-DFSIO: the write burst is in flight when the scheduled
// faults.master.* crash takes the control plane (and its fabric node) down.
// Clients ride the outage on the retry policy; recovery replays the journal
// and reconciles, then the read-back verifies every byte survived.
Task<void> master_crash_task(Cluster& c, const ChaosKnobs& k, Outcome& out) {
  const auto kind = cluster::FsKind::kBurstBuffer;
  sim::Simulation& sim = c.sim();

  mapred::DfsioParams dfsio;
  dfsio.files = k.files;
  dfsio.file_size = k.file_size;
  dfsio.verify_on_read = true;
  auto write_result = co_await mapred::dfsio_write(
      c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), dfsio);
  out.write_ok = write_result.is_ok();
  if (write_result.is_ok()) {
    out.write_mbps = write_result.value().aggregate_mbps;
  }
  co_await c.bb_master().wait_recovered();
  co_await c.bb_master().wait_all_flushed();
  out.blocks_lost = c.bb_master().lost_blocks();
  out.blocks_recovered = c.bb_master().recovered_blocks();

  out.files_total = k.files;
  std::uint64_t read_bytes = 0;
  const SimTime read_start = sim.now();
  for (std::uint32_t i = 0; i < k.files; ++i) {
    const std::string path = dfsio.dir + "/io_file_" + std::to_string(i);
    auto reader = co_await c.filesystem(kind).open(
        path, c.compute_nodes()[(i + 1) % c.compute_nodes().size()]);
    if (!reader.is_ok()) continue;
    bool all_ok = true;
    const std::uint64_t size = reader.value()->size();
    for (std::uint64_t off = 0; off < size && all_ok; off += 4 * MiB) {
      const std::uint64_t len = std::min<std::uint64_t>(4 * MiB, size - off);
      auto data = co_await reader.value()->read(off, len);
      all_ok = data.is_ok() &&
               verify_pattern(fnv1a(path), off, data.value());
      if (all_ok) read_bytes += len;
    }
    if (all_ok) ++out.files_readable;
  }
  const SimTime read_ns = sim.now() - read_start;
  out.read_mbps = read_ns == 0
                      ? 0
                      : static_cast<double>(read_bytes) / MiB /
                            (static_cast<double>(read_ns) / duration::sec);
  c.bb_master().stop_heartbeat();
}

void collect_counters(Cluster& c, Outcome& out) {
  MetricRegistry& metrics = c.sim().metrics();
  out.retry_attempts = metrics.counter_value("net.retry.attempts");
  out.retry_recovered = metrics.counter_value("net.retry.recovered");
  out.failovers = metrics.counter_value("kv.failover.get") +
                  metrics.counter_value("kv.failover.set");
  out.restarts = metrics.counter_value("kv.restarts");
  for (const auto& [name, value] : metrics.counters()) {
    if (name.rfind("faults.injected", 0) == 0) out.faults_injected += value;
  }
  const auto histograms = metrics.histograms();
  if (const auto it = histograms.find("bb.degraded_window_ns");
      it != histograms.end()) {
    out.recovery_s = ns_to_sec(it->second.sum);
    out.degraded_windows = it->second.count;
  }
  out.repl_repair_bytes = metrics.counter_value("kv.repl.repair_bytes");
  out.repl_repair_chunks = metrics.counter_value("kv.repl.repair_chunks");
  out.repl_repair_failed = metrics.counter_value("kv.repl.repair_failed");
  out.repl_anti_entropy_chunks =
      metrics.counter_value("kv.repl.anti_entropy_chunks");
  out.repl_replica_reads = metrics.counter_value("kv.repl.replica_reads");
  const auto gauges = metrics.gauges();
  if (const auto it = gauges.find("kv.repl.under_replicated");
      it != gauges.end()) {
    out.under_replicated_peak = it->second.high_watermark;
  }
  if (const auto it = histograms.find("kv.repl.repair_ns");
      it != histograms.end()) {
    out.repair_hist = it->second;
  }
  if (const auto it = histograms.find("kv.repl.anti_entropy_ns");
      it != histograms.end()) {
    out.anti_entropy_hist = it->second;
  }
  out.integ_detected = metrics.counter_value("kv.integrity.detected");
  out.integ_repaired = metrics.counter_value("kv.integrity.repaired") +
                       metrics.counter_value("kv.scrub.repaired");
  out.integ_unrepairable =
      metrics.counter_value("kv.integrity.unrepairable") +
      metrics.counter_value("kv.scrub.unrepairable");
  out.scrub_passes = metrics.counter_value("kv.scrub.passes");
  out.scrub_chunks = metrics.counter_value("kv.scrub.chunks");
  out.quarantined = c.bb_master().quarantined_blocks();
  out.md_recovered_files = metrics.counter_value("bb.md.recovered_files");
  out.md_replayed_records = metrics.counter_value("bb.md.replayed_records");
  out.md_restarts = metrics.counter_value("bb.md.restarts");
  out.md_journal_records = metrics.counter_value("bb.md.journal_records");
  out.md_checkpoints = metrics.counter_value("bb.md.checkpoints");
  out.md_recovery_errors = metrics.counter_value("bb.md.recovery_errors");
  if (const auto it = histograms.find("bb.md.recovery_ns");
      it != histograms.end()) {
    out.md_recovery_hist = it->second;
  }
}

Outcome run_scheme(bb::Scheme scheme, const Properties& props,
                   const ChaosKnobs& k, bool with_faults,
                   std::uint32_t repl_factor = 0) {
  ClusterConfig config = base_config(scheme, props);
  if (with_faults) config.faults = k.faults;
  if (repl_factor > 0) config.kv_client.replication_factor = repl_factor;
  Cluster cluster(config);
  Outcome outcome;
  hpcbb::bench::run_to_completion(cluster,
                                  chaos_task(cluster, k, outcome));
  collect_counters(cluster, outcome);
  return outcome;
}

// Corruption-storm configuration: crash/RPC faults off so every anomaly is
// attributable to corruption, the scrubber on. faults.corrupt.* and
// kv.scrub.* properties override the storm defaults.
ClusterConfig integrity_config(const Properties& props, const ChaosKnobs& k,
                               std::uint32_t repl_factor) {
  ClusterConfig config = base_config(bb::Scheme::kAsync, props);
  faults::InjectorParams storm;
  storm.enabled = true;
  storm.seed = k.faults.seed;
  storm.corrupt_first_ns = k.smoke ? 4 * duration::ms : 30 * duration::ms;
  storm.corrupt_period_ns = k.smoke ? 2 * duration::ms : 15 * duration::ms;
  storm.corrupt_count = k.smoke ? 6 : 40;
  config.faults = faults::InjectorParams::from_properties(props, storm);
  config.bb_scrub.interval_ns = props.get_duration_ns_or(
      "kv.scrub.interval", k.smoke ? 10 * duration::ms : 50 * duration::ms);
  config.bb_scrub.chunk_pace_ns =
      props.get_duration_ns_or("kv.scrub.pace", 0);
  config.kv_client.replication_factor = repl_factor;
  return config;
}

Outcome run_integrity(const Properties& props, const ChaosKnobs& k,
                      std::uint32_t repl_factor) {
  Cluster cluster(integrity_config(props, k, repl_factor));
  Outcome outcome;
  hpcbb::bench::run_to_completion(cluster,
                                  integrity_task(cluster, k, outcome));
  collect_counters(cluster, outcome);
  return outcome;
}

// Mid-DFSIO master crash with the metadata journal on. Crash/RPC faults on
// the data plane stay off so everything in the section is attributable to
// the control-plane outage; faults.master.* properties override the
// schedule. Deterministic in faults.seed like the rest of the bench.
ClusterConfig master_crash_config(bb::Scheme scheme, const Properties& props,
                                  const ChaosKnobs& k,
                                  std::uint32_t repl_factor) {
  ClusterConfig config = base_config(scheme, props);
  config.bb_md.journal = true;
  config.kv_client.replication_factor = repl_factor;
  // Riding out the outage needs backoff that spans the downtime window:
  // retries against the downed master node fail fast at the fabric, so the
  // attempt budget, not the per-attempt deadline, is what must cover it.
  net::RetryPolicy retry = config.retry;
  retry.max_attempts = 12;
  retry.backoff_base_ns = 2 * duration::ms;
  retry.backoff_max_ns = 20 * duration::ms;
  config.retry = net::RetryPolicy::from_properties(props, retry);
  faults::InjectorParams faults;
  faults.enabled = true;
  faults.seed = k.faults.seed;
  faults.master_first_ns = k.smoke ? 4 * duration::ms : 60 * duration::ms;
  faults.master_downtime_ns =
      k.smoke ? 10 * duration::ms : 50 * duration::ms;
  faults.master_count = 1;
  config.faults = faults::InjectorParams::from_properties(props, faults);
  return config;
}

Outcome run_master_crash(bb::Scheme scheme, const Properties& props,
                         const ChaosKnobs& k, std::uint32_t repl_factor) {
  Cluster cluster(master_crash_config(scheme, props, k, repl_factor));
  Outcome outcome;
  hpcbb::bench::run_to_completion(cluster,
                                  master_crash_task(cluster, k, outcome));
  collect_counters(cluster, outcome);
  return outcome;
}

// ---- health monitor (DESIGN.md §15) ----
// Every fault class above must also be *observable*: a run with the SLO
// engine armed has to page the one rule mapped to the injected fault class
// and emit a parseable hpcbb.incident.v1 bundle, while the identical healthy
// run fires zero alerts. This is the bench-level proof that the alert table
// in EXPERIMENTS.md actually discriminates fault classes.

// The observability stack the experiment runner wires, built per health run:
// trace recorder -> span sink -> {latency attribution, flight recorder},
// sampler tick -> burn-rate SLO engine. Only health runs construct one, so
// the earlier sections keep their exact event schedules.
struct HealthHarness {
  sim::TraceRecorder trace;
  obs::SpanAccountant attribution;
  obs::FlightRecorder flightrec;
  obs::HealthMonitor monitor;
  obs::TimeSeriesSampler sampler;

  HealthHarness(Cluster& c, obs::HealthParams params, SimTime interval_ns)
      : trace(c.sim()),
        attribution(5),
        flightrec(c.sim(), params.flightrec_bytes),
        monitor(c.sim(), std::move(params)),
        sampler(c.sim(), interval_ns) {
    c.bb_master().set_trace(&trace);
    c.sim().set_trace(&trace);
    trace.set_span_sink([this](const sim::TraceSpan& s) {
      attribution.on_span_close(s);
      flightrec.on_span_close(s);
    });
    monitor.set_flight_recorder(&flightrec);
    monitor.set_accountant(&attribution);
    monitor.attach(sampler);
    sampler.watch_gauge("bb.kv_live");
    sampler.watch_gauge("bb.master_up");
    sampler.watch_gauge("bb.dirty_bytes");
    sampler.watch_counter("kv.integrity.detected");
  }
};

// The workload finishing is what quiesces the sampler (and with it the
// monitor's evaluation clock).
Task<void> with_sampler(Task<void> inner, obs::TimeSeriesSampler& sampler) {
  co_await std::move(inner);
  sampler.stop();
}

// DFSIO burst + flush drain for the limpware class: no crash/RPC faults, so
// every slow flush is attributable to the degraded devices.
Task<void> limp_task(Cluster& c, const ChaosKnobs& k, Outcome& out) {
  const auto kind = cluster::FsKind::kBurstBuffer;
  mapred::DfsioParams dfsio;
  dfsio.files = k.files;
  dfsio.file_size = k.file_size;
  auto write_result = co_await mapred::dfsio_write(
      c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), dfsio);
  out.write_ok = write_result.is_ok();
  if (write_result.is_ok()) {
    out.write_mbps = write_result.value().aggregate_mbps;
  }
  co_await c.bb_master().wait_all_flushed();
  c.bb_master().stop_heartbeat();
}

// One limpware episode on the first device target (kv0's journal SSD, which
// the put path co_awaits), spanning the write burst. Episodes are serialized
// by the injector, so one long episode beats many short ones here.
ClusterConfig limp_config(const Properties& props, const ChaosKnobs& k) {
  ClusterConfig config = base_config(bb::Scheme::kAsync, props);
  faults::InjectorParams limp;
  limp.enabled = true;
  limp.seed = k.faults.seed;
  // The episode must be in force before the burst's first puts reach the
  // journal: Device::io prices each transfer when it is *enqueued*, so a
  // slowdown applied mid-queue would not reprice writes already in line.
  limp.limp_first_ns = 100 * duration::us;
  limp.limp_duration_ns = k.smoke ? 60 * duration::ms : 600 * duration::ms;
  limp.limp_factor = 8.0;
  limp.limp_count = 1;
  config.faults = faults::InjectorParams::from_properties(props, limp);
  return config;
}

// The limpware SLO threshold is relative: 3x the put-latency max of a
// fault-free run of the same workload, so the rule tracks the geometry
// instead of hard-coding a simulator constant.
std::uint64_t healthy_put_max_ns(const Properties& props,
                                 const ChaosKnobs& k) {
  Cluster cluster(base_config(bb::Scheme::kAsync, props));
  Outcome outcome;
  hpcbb::bench::run_to_completion(cluster, limp_task(cluster, k, outcome));
  const auto histograms = cluster.sim().metrics().histograms();
  const auto it = histograms.find("kv.put");
  return it != histograms.end() ? it->second.max : 0;
}

// Where incident bundles land: the working directory, or $HPCBB_BENCH_OUT
// beside the JSON results (CI uploads incident-*.json as an artifact).
std::string incident_dir() {
  if (const char* dir = std::getenv("HPCBB_BENCH_OUT")) return dir;
  return ".";
}

struct HealthOutcome {
  std::uint64_t warns = 0;
  std::uint64_t pages = 0;
  std::uint64_t resolves = 0;
  std::uint64_t healthy_alerts = 0;  // transitions in the fault-free twin
  std::size_t incidents = 0;
  bool rule_paged = false;     // the mapped rule reached page state
  bool bundle_ok = false;      // incident parses: schema + flightrec + alerts
  bool bundle_faults = false;  // bundle correlates >= 1 injected fault
  bool bundle_suspects = false;  // >= 1 op_id in flight at a fault instant
  std::uint64_t flightrec_dropped = 0;
};

using HealthTask = Task<void> (*)(Cluster&, const ChaosKnobs&, Outcome&);

// One instrumented run: `config` carries the fault schedule (or none, for
// the healthy twin), `slo` the rule set. Fills the monitor-side fields of
// HealthOutcome; healthy_alerts is merged by the caller.
HealthOutcome run_health(const ClusterConfig& config, const Properties& slo,
                         const ChaosKnobs& k, const std::string& rule,
                         HealthTask task) {
  HealthOutcome out;
  auto params = obs::HealthParams::from_properties(slo);
  if (!params.is_ok()) {
    std::fprintf(stderr, "health rules rejected: %s\n",
                 params.status().to_string().c_str());
    return out;
  }
  Cluster cluster(config);
  const SimTime interval = k.smoke ? 2 * duration::ms : 10 * duration::ms;
  HealthHarness harness(cluster, std::move(params).value(), interval);
  Outcome outcome;
  harness.sampler.start();
  hpcbb::bench::run_to_completion(
      cluster, with_sampler(task(cluster, k, outcome), harness.sampler));
  out.warns = harness.monitor.warn_count();
  out.pages = harness.monitor.page_count();
  out.resolves = harness.monitor.resolve_count();
  out.incidents = harness.monitor.incidents().size();
  out.flightrec_dropped = harness.flightrec.dropped_total();
  for (const obs::AlertEvent& event : harness.monitor.transitions()) {
    if (event.rule == rule && event.to == obs::AlertState::kPage) {
      out.rule_paged = true;
    }
  }
  for (const obs::Incident& incident : harness.monitor.incidents()) {
    if (incident.rule != rule) continue;
    const std::string& json = incident.json;
    out.bundle_ok =
        json.find("\"schema\":\"hpcbb.incident.v1\"") != std::string::npos &&
        json.find("\"flightrec\":{") != std::string::npos &&
        json.find("\"alerts\":[{") != std::string::npos;
    out.bundle_faults = json.find("\"faults\":[{") != std::string::npos;
    out.bundle_suspects =
        json.find("\"suspect_op_ids\":[]") == std::string::npos;
    break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Properties props;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") continue;  // handled by bench::finish below
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "usage: %s [--gate] [key=value ...]\n", argv[0]);
      return 2;
    }
    props.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  const ChaosKnobs knobs = knobs_from(props);

  hpcbb::bench::print_header(
      "A4",
      "chaos: DFSIO + Sort under rolling KV crashes and transient RPC faults",
      "FT schemes lose nothing and stay readable; throughput degrades "
      "bounded; the cluster recovers within the downtime window");
  std::printf("faults: seed=%llu drop=%.4f delay=%.4f crashes=%u "
              "(downtime %.0fms)%s\n",
              static_cast<unsigned long long>(knobs.faults.seed),
              knobs.faults.rpc_drop_prob, knobs.faults.rpc_delay_prob,
              knobs.faults.crash_count,
              static_cast<double>(knobs.faults.crash_downtime_ns) /
                  hpcbb::duration::ms,
              knobs.smoke ? "  [smoke]" : "");
  hpcbb::bench::JsonResult result(
      "a4", "chaos: DFSIO + Sort under rolling crashes and RPC faults");

  std::printf("\n%-10s %5s %5s %9s %9s %7s %8s %8s %7s %7s %6s\n",
              "scheme", "lost", "recov", "readable", "wr-deg%", "rd-deg%",
              "recov-s", "retries", "failov", "sort-s", "sorted");
  for (const bb::Scheme scheme :
       {bb::Scheme::kAsync, bb::Scheme::kSync, bb::Scheme::kLocal}) {
    const Outcome healthy = run_scheme(scheme, props, knobs, false);
    const Outcome chaos = run_scheme(scheme, props, knobs, true);
    const std::string label(to_string(scheme));
    const double wr_frac = hpcbb::bench::ratio(chaos.write_mbps,
                                               healthy.write_mbps);
    const double rd_frac = hpcbb::bench::ratio(chaos.read_mbps,
                                               healthy.read_mbps);
    std::printf("%-10s %5llu %5llu %6u/%-2u %8.0f%% %6.0f%% %8.3f %8llu "
                "%7llu %7.2f %6s\n",
                label.c_str(),
                static_cast<unsigned long long>(chaos.blocks_lost),
                static_cast<unsigned long long>(chaos.blocks_recovered),
                chaos.files_readable, chaos.files_total, 100.0 * wr_frac,
                100.0 * rd_frac, chaos.recovery_s,
                static_cast<unsigned long long>(chaos.retry_attempts),
                static_cast<unsigned long long>(chaos.failovers),
                chaos.sort_s, chaos.sorted ? "yes" : "NO");
    result.add("blocks-lost", label, static_cast<double>(chaos.blocks_lost));
    result.add("blocks-recovered", label,
               static_cast<double>(chaos.blocks_recovered));
    result.add("files-readable", label,
               static_cast<double>(chaos.files_readable));
    result.add("write-healthy-mbps", label, healthy.write_mbps);
    result.add("write-chaos-mbps", label, chaos.write_mbps);
    result.add("read-healthy-mbps", label, healthy.read_mbps);
    result.add("read-chaos-mbps", label, chaos.read_mbps);
    result.add("recovery-s", label, chaos.recovery_s);
    result.add("degraded-windows", label,
               static_cast<double>(chaos.degraded_windows));
    result.add("retry-attempts", label,
               static_cast<double>(chaos.retry_attempts));
    result.add("retry-recovered", label,
               static_cast<double>(chaos.retry_recovered));
    result.add("failovers", label, static_cast<double>(chaos.failovers));
    result.add("kv-restarts", label, static_cast<double>(chaos.restarts));
    result.add("faults-injected", label,
               static_cast<double>(chaos.faults_injected));
    result.add("sort-chaos-s", label, chaos.sort_s);
    result.add("sort-sorted", label, chaos.sorted ? 1.0 : 0.0);
  }
  std::printf("\n(wr/rd-deg%% = chaos throughput as a fraction of the "
              "healthy run with identical resilience settings)\n");

  // ---- replicated mode: BB-Async at R=1 vs R=2 under the same crash
  // schedule. R=1 documents the durability window (dirty chunks die with
  // their server); R=2 must report zero lost blocks and every file
  // readable, with the repair/anti-entropy traffic accounted.
  std::printf("\nreplication (bb-async under chaos):\n");
  std::printf("%-5s %5s %9s %11s %7s %7s %9s %11s %11s\n",
              "R", "lost", "readable", "repair-MiB", "chunks", "a-e",
              "rd-repl", "repair-ms", "underrepl");
  for (const std::uint32_t factor : {1u, 2u}) {
    const Outcome o =
        run_scheme(bb::Scheme::kAsync, props, knobs, true, factor);
    const std::string label = "R=" + std::to_string(factor);
    std::printf("%-5s %5llu %6u/%-2u %11.1f %7llu %7llu %9llu %11.2f %11llu\n",
                label.c_str(),
                static_cast<unsigned long long>(o.blocks_lost),
                o.files_readable, o.files_total,
                static_cast<double>(o.repl_repair_bytes) / MiB,
                static_cast<unsigned long long>(o.repl_repair_chunks),
                static_cast<unsigned long long>(o.repl_anti_entropy_chunks),
                static_cast<unsigned long long>(o.repl_replica_reads),
                static_cast<double>(o.repair_hist.max) / hpcbb::duration::ms,
                static_cast<unsigned long long>(o.under_replicated_peak));
    result.add("repl-blocks-lost", label,
               static_cast<double>(o.blocks_lost));
    result.add("repl-files-readable", label,
               static_cast<double>(o.files_readable));
    result.add("repl-write-chaos-mbps", label, o.write_mbps);
    result.add("repl-read-chaos-mbps", label, o.read_mbps);
    result.add("repl-repair-bytes", label,
               static_cast<double>(o.repl_repair_bytes));
    result.add("repl-repair-chunks", label,
               static_cast<double>(o.repl_repair_chunks));
    result.add("repl-repair-failed", label,
               static_cast<double>(o.repl_repair_failed));
    result.add("repl-anti-entropy-chunks", label,
               static_cast<double>(o.repl_anti_entropy_chunks));
    result.add("repl-replica-reads", label,
               static_cast<double>(o.repl_replica_reads));
    result.add("repl-under-replicated-peak", label,
               static_cast<double>(o.under_replicated_peak));
    result.add("repl-repair-runs", label,
               static_cast<double>(o.repair_hist.count));
    result.add("repl-repair-p50-ms", label,
               static_cast<double>(o.repair_hist.p50) / hpcbb::duration::ms);
    result.add("repl-repair-p99-ms", label,
               static_cast<double>(o.repair_hist.p99) / hpcbb::duration::ms);
    result.add("repl-repair-max-ms", label,
               static_cast<double>(o.repair_hist.max) / hpcbb::duration::ms);
    result.add("repl-anti-entropy-p50-ms", label,
               static_cast<double>(o.anti_entropy_hist.p50) /
                   hpcbb::duration::ms);
  }
  std::printf("(a-e = anti-entropy chunks restored to rejoined servers; "
              "rd-repl = reads served by a non-primary replica)\n");

  // ---- integrity: BB-Async under a corruption storm (scheduled bit-flips /
  // torn writes / stale reads across the KV slabs and OSS devices) with the
  // background scrubber on, at R=1 vs R=2. Silent corruption must be zero at
  // any R — a read either returns verified bytes or fails loudly. At R=2 the
  // verified-read failover + scrub repair machinery keeps files readable and
  // no corrupt byte reaches Lustre (the flusher re-verifies every block);
  // at R=1 unrepairable dirty blocks are quarantined instead of flushed.
  std::printf("\nintegrity (bb-async corruption storm, scrubber on):\n");
  std::printf("%-5s %7s %7s %7s %8s %7s %7s %9s %7s\n",
              "R", "detect", "repair", "unrep", "quarant", "silent",
              "passes", "readable", "inject");
  for (const std::uint32_t factor : {1u, 2u}) {
    const Outcome o = run_integrity(props, knobs, factor);
    const std::string label = "R=" + std::to_string(factor);
    std::printf("%-5s %7llu %7llu %7llu %8llu %7llu %7llu %6u/%-2u %7llu\n",
                label.c_str(),
                static_cast<unsigned long long>(o.integ_detected),
                static_cast<unsigned long long>(o.integ_repaired),
                static_cast<unsigned long long>(o.integ_unrepairable),
                static_cast<unsigned long long>(o.quarantined),
                static_cast<unsigned long long>(o.silent_corruptions),
                static_cast<unsigned long long>(o.scrub_passes),
                o.files_readable, o.files_total,
                static_cast<unsigned long long>(o.faults_injected));
    result.add("integ-detected", label,
               static_cast<double>(o.integ_detected));
    result.add("integ-repaired", label,
               static_cast<double>(o.integ_repaired));
    result.add("integ-unrepairable", label,
               static_cast<double>(o.integ_unrepairable));
    result.add("integ-quarantined", label,
               static_cast<double>(o.quarantined));
    result.add("integ-silent-corruptions", label,
               static_cast<double>(o.silent_corruptions));
    result.add("integ-scrub-passes", label,
               static_cast<double>(o.scrub_passes));
    result.add("integ-scrub-chunks", label,
               static_cast<double>(o.scrub_chunks));
    result.add("integ-files-readable", label,
               static_cast<double>(o.files_readable));
    result.add("integ-readback-ok", label,
               o.silent_corruptions == 0 ? 1.0 : 0.0);
    result.add("integ-faults-injected", label,
               static_cast<double>(o.faults_injected));
  }
  std::printf("(silent = reads returning OK with wrong bytes, the one number "
              "that must be 0 at every R; quarantined blocks fail loudly "
              "with data-loss instead)\n");

  // ---- master crash: mid-DFSIO control-plane outage with the metadata
  // journal on, per scheme x R. Recovery loads the checkpoint, replays the
  // journal tail, and reconciles against the KV chunk inventory while the
  // writers ride the outage on retries. At R=2 the journal keys themselves
  // are replicated, so the zero-metadata-loss invariant must hold: every
  // file recovered, every byte readable, nothing lost.
  std::printf("\nmaster crash (mid-DFSIO, journal on):\n");
  std::printf("%-10s %-4s %5s %9s %7s %9s %6s %11s %7s %6s %9s\n",
              "scheme", "R", "lost", "readable", "recov-f", "replayed",
              "rstrt", "recov-ms", "jrnl", "ckpt", "zero-loss");
  for (const bb::Scheme scheme :
       {bb::Scheme::kAsync, bb::Scheme::kSync, bb::Scheme::kLocal}) {
    for (const std::uint32_t factor : {1u, 2u}) {
      const Outcome o = run_master_crash(scheme, props, knobs, factor);
      const std::string label =
          std::string(to_string(scheme)) + "/R=" + std::to_string(factor);
      const bool zero_loss = o.blocks_lost == 0 &&
                             o.files_readable == o.files_total &&
                             o.md_restarts >= 1 &&
                             o.md_recovery_errors == 0;
      std::printf(
          "%-10s %-4u %5llu %6u/%-2u %7llu %9llu %6llu %5.1f/%-5.1f %7llu "
          "%6llu %9s\n",
          std::string(to_string(scheme)).c_str(), factor,
          static_cast<unsigned long long>(o.blocks_lost),
          o.files_readable, o.files_total,
          static_cast<unsigned long long>(o.md_recovered_files),
          static_cast<unsigned long long>(o.md_replayed_records),
          static_cast<unsigned long long>(o.md_restarts),
          static_cast<double>(o.md_recovery_hist.p50) / hpcbb::duration::ms,
          static_cast<double>(o.md_recovery_hist.max) / hpcbb::duration::ms,
          static_cast<unsigned long long>(o.md_journal_records),
          static_cast<unsigned long long>(o.md_checkpoints),
          zero_loss ? "yes" : "NO");
      result.add("master-blocks-lost", label,
                 static_cast<double>(o.blocks_lost));
      result.add("master-files-readable", label,
                 static_cast<double>(o.files_readable));
      result.add("master-recovered-files", label,
                 static_cast<double>(o.md_recovered_files));
      result.add("master-replayed-records", label,
                 static_cast<double>(o.md_replayed_records));
      result.add("master-restarts", label,
                 static_cast<double>(o.md_restarts));
      result.add("master-recovery-p50-ms", label,
                 static_cast<double>(o.md_recovery_hist.p50) /
                     hpcbb::duration::ms);
      result.add("master-recovery-max-ms", label,
                 static_cast<double>(o.md_recovery_hist.max) /
                     hpcbb::duration::ms);
      result.add("master-journal-records", label,
                 static_cast<double>(o.md_journal_records));
      result.add("master-checkpoints", label,
                 static_cast<double>(o.md_checkpoints));
      result.add("master-recovery-errors", label,
                 static_cast<double>(o.md_recovery_errors));
      result.add("master-write-mbps", label, o.write_mbps);
      result.add("master-retry-attempts", label,
                 static_cast<double>(o.retry_attempts));
      result.add("master-zero-md-loss", label, zero_loss ? 1.0 : 0.0);
    }
  }
  std::printf("(recov-ms = journal-replay recovery time p50/max; zero-loss "
              "= no lost blocks, every file readable, recovery clean — the "
              "R=2 invariant)\n");

  // ---- health monitor: every fault class above re-run with the SLO engine
  // armed. The class's mapped rule must page with a parseable incident
  // bundle that correlates the injected faults, and the fault-free twin of
  // the same run must fire zero alerts (EXPERIMENTS.md alert table).
  std::printf("\nhealth monitor (SLO burn-rate alerts per fault class):\n");
  std::printf("%-12s %-24s %7s %5s %8s %6s %6s %6s %8s\n",
              "class", "rule", "healthy", "pages", "resolves", "incid",
              "bundle", "fault", "suspect");
  bool health_ok = true;
  const std::string inc_dir = incident_dir();
  const auto slo_base = [&inc_dir](const char* prefix) {
    Properties slo;
    slo.set("slo.incident_dir", inc_dir);
    slo.set("slo.incident_prefix", prefix);
    return slo;
  };
  const auto report_health = [&](const char* cls, const char* rule,
                                 const HealthOutcome& o,
                                 bool expect_suspects) {
    const bool ok = o.rule_paged && o.bundle_ok && o.bundle_faults &&
                    o.healthy_alerts == 0 &&
                    (!expect_suspects || o.bundle_suspects);
    health_ok = health_ok && ok;
    std::printf("%-12s %-24s %7llu %5llu %8llu %6zu %6s %6s %8s%s\n", cls,
                rule, static_cast<unsigned long long>(o.healthy_alerts),
                static_cast<unsigned long long>(o.pages),
                static_cast<unsigned long long>(o.resolves), o.incidents,
                o.bundle_ok ? "yes" : "NO", o.bundle_faults ? "yes" : "NO",
                o.bundle_suspects ? "yes" : "-", ok ? "" : "   <- FAIL");
    result.add("health-pages", cls, static_cast<double>(o.pages));
    result.add("health-warns", cls, static_cast<double>(o.warns));
    result.add("health-resolves", cls, static_cast<double>(o.resolves));
    result.add("health-incidents", cls, static_cast<double>(o.incidents));
    result.add("health-healthy-alerts", cls,
               static_cast<double>(o.healthy_alerts));
    result.add("health-rule-paged", cls, o.rule_paged ? 1.0 : 0.0);
    result.add("health-bundle-ok", cls, o.bundle_ok ? 1.0 : 0.0);
    result.add("health-flightrec-dropped", cls,
               static_cast<double>(o.flightrec_dropped));
  };
  const auto healthy_alerts = [](const HealthOutcome& o) {
    return o.warns + o.pages + o.resolves;
  };

  {
    // KV crash: the failure detector's live-peer gauge dips below the full
    // ring while a server is down.
    ClusterConfig faulted = base_config(bb::Scheme::kAsync, props);
    faulted.faults = knobs.faults;
    Properties slo = slo_base("incident-kvcrash");
    slo.set("slo.kv_live_min", std::to_string(faulted.kv_servers));
    HealthOutcome chaos =
        run_health(faulted, slo, knobs, "kv_live_min", chaos_task);
    chaos.healthy_alerts = healthy_alerts(run_health(
        base_config(bb::Scheme::kAsync, props), slo, knobs, "kv_live_min",
        chaos_task));
    report_health("kv-crash", "kv_live_min", chaos, true);
  }
  {
    // Master crash: the control-plane liveness gauge drops to 0 for the
    // whole downtime window.
    ClusterConfig faulted = master_crash_config(bb::Scheme::kAsync, props,
                                                knobs, 1);
    ClusterConfig healthy = faulted;
    healthy.faults = faults::InjectorParams{};
    Properties slo = slo_base("incident-master");
    slo.set("slo.master_up_min", "1");
    HealthOutcome chaos =
        run_health(faulted, slo, knobs, "master_up_min", master_crash_task);
    chaos.healthy_alerts = healthy_alerts(
        run_health(healthy, slo, knobs, "master_up_min", master_crash_task));
    report_health("master-crash", "master_up_min", chaos, true);
  }
  {
    // Corruption storm: any verified-read or scrubber detection at all is a
    // breach (threshold 0 on the cumulative detection counters).
    ClusterConfig faulted = integrity_config(props, knobs, 1);
    ClusterConfig healthy = faulted;
    healthy.faults = faults::InjectorParams{};
    Properties slo = slo_base("incident-corrupt");
    slo.set("slo.integrity_detected_max", "0");
    HealthOutcome chaos = run_health(faulted, slo, knobs,
                                     "integrity_detected_max", integrity_task);
    chaos.healthy_alerts = healthy_alerts(run_health(
        healthy, slo, knobs, "integrity_detected_max", integrity_task));
    report_health("corruption", "integrity_detected_max", chaos, false);
  }
  {
    // Limpware: put latency through the degraded journal SSD blows past 3x
    // the fault-free maximum of the same workload (generic max_max rule —
    // no built-in needed for a metric named in the key).
    const std::uint64_t baseline = healthy_put_max_ns(props, knobs);
    ClusterConfig faulted = limp_config(props, knobs);
    ClusterConfig healthy = faulted;
    healthy.faults = faults::InjectorParams{};
    Properties slo = slo_base("incident-limp");
    slo.set("slo.max_max.kv.put", std::to_string(3 * baseline) + "ns");
    HealthOutcome chaos =
        run_health(faulted, slo, knobs, "max_max.kv.put", limp_task);
    chaos.healthy_alerts = healthy_alerts(
        run_health(healthy, slo, knobs, "max_max.kv.put", limp_task));
    report_health("limpware", "max_max.kv.put", chaos, false);
    result.add("health-limp-baseline-put-ms", "limpware",
               static_cast<double>(baseline) / hpcbb::duration::ms);
  }
  std::printf("(healthy = alert transitions in the fault-free twin, must be "
              "0; bundle = hpcbb.incident.v1 with flight-recorder rings; "
              "fault/suspect = the bundle correlates injected faults and "
              "in-flight op_ids)\n");
  std::printf("\n%s: every fault class paged its mapped SLO rule with a "
              "parseable incident bundle and zero healthy-run alerts\n",
              health_ok ? "PASS" : "FAIL");

  const int gate_rc = hpcbb::bench::finish(result, argc, argv);
  return health_ok ? gate_rc : 1;
}
