// F2 — KV aggregate throughput vs client count and server count: the burst
// buffer must absorb many concurrent writers; throughput should scale with
// servers and saturate the fabric, with RDMA far above IPoIB.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "kvstore/client.h"
#include "kvstore/server.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using net::NodeId;
using sim::SimTime;
using sim::Task;

double run_case(net::TransportKind kind, std::uint32_t clients,
                std::uint32_t servers, std::uint64_t value_size,
                std::uint32_t ops_per_client) {
  sim::Simulation sim;
  net::Fabric fabric(sim, clients + servers, net::FabricParams{});
  net::Transport transport(fabric, net::transport_preset(kind));
  net::RpcHub hub(transport);

  std::vector<std::unique_ptr<kv::Server>> server_objs;
  std::vector<NodeId> server_nodes;
  for (std::uint32_t s = 0; s < servers; ++s) {
    kv::ServerParams params;
    params.store.memory_budget = 2 * GiB / servers;
    server_objs.push_back(
        std::make_unique<kv::Server>(hub, clients + s, params));
    server_nodes.push_back(clients + s);
  }

  std::vector<std::unique_ptr<kv::Client>> client_objs;
  for (NodeId c = 0; c < clients; ++c) {
    client_objs.push_back(std::make_unique<kv::Client>(hub, c, server_nodes));
    sim.spawn([](kv::Client& client, NodeId id, std::uint32_t ops,
                 std::uint64_t size) -> Task<void> {
      for (std::uint32_t i = 0; i < ops; ++i) {
        const std::string key =
            "c" + std::to_string(id) + "-" + std::to_string(i);
        (void)co_await client.set(key, make_bytes(Bytes(size, 0x5A)));
      }
    }(*client_objs.back(), c, ops_per_client, value_size));
  }
  sim.run();
  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * ops_per_client * value_size;
  return throughput_mbps(total, sim.now());
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F2", "KV aggregate SET throughput (512 KiB values)",
               "burst absorption scales with servers; RDMA >> IPoIB");
  hpcbb::bench::JsonResult result(
      "f2", "KV aggregate SET throughput (512 KiB values)");

  const std::vector<std::uint32_t> client_counts = {1, 4, 16, 64};
  const std::vector<std::uint32_t> server_counts = {1, 2, 4, 8};
  constexpr std::uint64_t kValue = 512 * KiB;

  std::printf("\n%-22s", "clients \\ servers");
  for (const std::uint32_t s : server_counts) std::printf("  %6u", s);
  std::printf("   (MB/s, RDMA)\n");
  for (const std::uint32_t c : client_counts) {
    std::printf("%-22u", c);
    for (const std::uint32_t s : server_counts) {
      const double mbps = run_case(hpcbb::net::TransportKind::kRdma, c, s,
                                   kValue, 24);
      std::printf("  %6.0f", mbps);
      result.add("rdma-c" + std::to_string(c) + "-mbps", s, mbps);
    }
    std::printf("\n");
  }

  std::printf("\n%-22s", "clients \\ servers");
  for (const std::uint32_t s : server_counts) std::printf("  %6u", s);
  std::printf("   (MB/s, IPoIB)\n");
  for (const std::uint32_t c : client_counts) {
    std::printf("%-22u", c);
    for (const std::uint32_t s : server_counts) {
      const double mbps = run_case(hpcbb::net::TransportKind::kIpoib, c, s,
                                   kValue, 24);
      std::printf("  %6.0f", mbps);
      result.add("ipoib-c" + std::to_string(c) + "-mbps", s, mbps);
    }
    std::printf("\n");
  }
  return hpcbb::bench::finish(result, argc, argv);
}
