// A1 (ablation) — what does RDMA buy the burst buffer? Run the identical
// BB-Async stack over native verbs vs IPoIB vs 10GigE and compare DFSIO
// write/read. In this paper series the RDMA transport is the foundation:
// socket transports erase most of the read gain and a chunk of the write
// gain.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using sim::Task;

struct Point {
  double write_mbps = 0;
  double read_mbps = 0;
};

Point run_case(net::TransportKind kind) {
  cluster::ClusterConfig config =
      hpcbb::bench::default_config(bb::Scheme::kAsync);
  config.fast_transport = kind;  // the whole BB + Lustre stack's transport
  Cluster cluster(config);
  Point point;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, Point& out) -> Task<void> {
        const auto fs_kind = cluster::FsKind::kBurstBuffer;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = 64 * MiB;
        auto write_result = co_await mapred::dfsio_write(
            c.filesystem(fs_kind), c.hub_for(fs_kind), c.compute_nodes(),
            params);
        if (!write_result.is_ok()) co_return;
        out.write_mbps = write_result.value().aggregate_mbps;
        auto read_result = co_await mapred::dfsio_read(
            c.filesystem(fs_kind), c.hub_for(fs_kind), c.compute_nodes(),
            params);
        if (read_result.is_ok()) {
          out.read_mbps = read_result.value().aggregate_mbps;
        }
      }(cluster, point));
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("A1 (ablation)",
               "the burst buffer over RDMA vs socket transports",
               "RDMA is load-bearing: socket transports forfeit most of the "
               "read gain");
  hpcbb::bench::JsonResult result(
      "a1", "the burst buffer over RDMA vs socket transports");

  const std::vector<std::pair<const char*, hpcbb::net::TransportKind>>
      transports = {{"RDMA", hpcbb::net::TransportKind::kRdma},
                    {"IPoIB", hpcbb::net::TransportKind::kIpoib},
                    {"10GigE", hpcbb::net::TransportKind::kTenGigE}};

  std::printf("\n%-10s  %12s  %12s\n", "transport", "write MB/s", "read MB/s");
  double rdma_read = 0;
  for (const auto& [label, kind] : transports) {
    const Point point = run_case(kind);
    std::printf("%-10s  %12.0f  %12.0f", label, point.write_mbps,
                point.read_mbps);
    result.add("write-mbps", label, point.write_mbps);
    result.add("read-mbps", label, point.read_mbps);
    if (std::string(label) == "RDMA") {
      rdma_read = point.read_mbps;
      std::printf("   (baseline)");
    } else {
      std::printf("   read loses %.1fx",
                  hpcbb::bench::ratio(rdma_read, point.read_mbps));
    }
    std::printf("\n");
  }
  return hpcbb::bench::finish(result, argc, argv);
}
