// F9 — node-local storage requirement: bytes of compute-node-local storage
// consumed by a DFSIO write, per system. The paper's deployment motivation:
// HPC compute nodes have little local storage; the burst buffer frees it.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using hpcbb::bench::SystemCase;
using sim::Task;

struct StorageOutcome {
  std::uint64_t total_local = 0;
  std::uint64_t max_node_local = 0;
  std::uint64_t lustre_bytes = 0;
  std::uint64_t buffer_bytes = 0;
};

StorageOutcome run_case(const SystemCase& system, std::uint64_t file_size) {
  Cluster cluster(hpcbb::bench::default_config(system.scheme));
  StorageOutcome outcome;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, cluster::FsKind kind, std::uint64_t fsize,
                  StorageOutcome& out) -> Task<void> {
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = fsize;
        auto result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!result.is_ok()) co_return;
        if (kind == cluster::FsKind::kBurstBuffer) {
          co_await c.bb_master().wait_all_flushed();
        }
        out.total_local = c.total_local_bytes_used();
        for (std::uint32_t i = 0; i < c.config().compute_nodes; ++i) {
          out.max_node_local = std::max(out.max_node_local,
                                        c.local_bytes_used(i));
        }
        for (std::uint32_t i = 0; i < c.oss_count(); ++i) {
          out.lustre_bytes += c.oss(i).used_bytes();
        }
        for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
          out.buffer_bytes += c.kv_server(i).store().stats().bytes;
        }
      }(cluster, system.kind, file_size, outcome));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F9", "node-local storage consumed by a 512 MiB DFSIO write",
               "reduced local storage requirement vs HDFS's 3x replication");
  hpcbb::bench::JsonResult result(
      "f9", "node-local storage consumed by a 512 MiB DFSIO write");

  constexpr std::uint64_t kFileSize = 64 * MiB;  // 8 files => 512 MiB dataset
  std::printf("\n%-10s  %14s  %14s  %12s  %14s\n", "system", "local (total)",
              "local (max/node)", "on Lustre", "in buffer");
  for (const auto& system : hpcbb::bench::all_systems()) {
    const StorageOutcome outcome = run_case(system, kFileSize);
    std::printf("%-10s  %14s  %14s  %12s  %14s\n", system.label,
                hpcbb::format_bytes(outcome.total_local).c_str(),
                hpcbb::format_bytes(outcome.max_node_local).c_str(),
                hpcbb::format_bytes(outcome.lustre_bytes).c_str(),
                hpcbb::format_bytes(outcome.buffer_bytes).c_str());
    result.add("local-total-bytes", system.label,
               static_cast<double>(outcome.total_local));
    result.add("local-max-node-bytes", system.label,
               static_cast<double>(outcome.max_node_local));
    result.add("lustre-bytes", system.label,
               static_cast<double>(outcome.lustre_bytes));
    result.add("buffer-bytes", system.label,
               static_cast<double>(outcome.buffer_bytes));
  }
  std::printf("\nexpected: HDFS 1.5 GiB local (3x replicas); BB-Async/Sync "
              "zero local;\nBB-Local 512 MiB (one RAM-disk replica).\n");
  return hpcbb::bench::finish(result, argc, argv);
}
