// A2 (ablation/extension) — read promotion: after the buffer has lost its
// copy (restart/eviction), repeated reads of a hot input either keep paying
// the Lustre price (promotion off — the paper's base design) or return to
// RDMA speed after the first pass (promotion on — buffer as read cache).
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using namespace hpcbb::duration;  // NOLINT
using hpcbb::bench::Cluster;
using sim::SimTime;
using sim::Task;

std::vector<double> run_case(bool promote, int passes) {
  cluster::ClusterConfig config =
      hpcbb::bench::default_config(bb::Scheme::kAsync);
  config.bb_promote_on_read = promote;
  Cluster cluster(config);
  std::vector<double> pass_mbps;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, int n_passes,
                  std::vector<double>& out) -> Task<void> {
        const auto kind = cluster::FsKind::kBurstBuffer;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = 32 * MiB;
        auto write_result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!write_result.is_ok()) co_return;
        co_await c.bb_master().wait_all_flushed();
        // Cold buffer: restart the KV tier (contents gone, Lustre has all).
        for (std::uint32_t i = 0; i < c.kv_server_count(); ++i) {
          c.kv_server(i).crash();
          c.kv_server(i).restart();
        }
        for (int pass = 0; pass < n_passes; ++pass) {
          auto read_result = co_await mapred::dfsio_read(
              c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
          if (!read_result.is_ok()) co_return;
          out.push_back(read_result.value().aggregate_mbps);
          co_await c.sim().delay(50 * ms);  // let promotions land
        }
      }(cluster, passes, pass_mbps));
  return pass_mbps;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("A2 (ablation)",
               "read promotion: repeated reads of a cold (flushed) dataset",
               "with promotion the second pass returns to buffer speed");
  hpcbb::bench::JsonResult result(
      "a2", "read promotion: repeated reads of a cold (flushed) dataset");

  constexpr int kPasses = 3;
  std::printf("\n%-16s", "mode");
  for (int p = 1; p <= kPasses; ++p) std::printf("   pass%d MB/s", p);
  std::printf("\n");
  for (const bool promote : {false, true}) {
    const std::vector<double> mbps = run_case(promote, kPasses);
    std::printf("%-16s", promote ? "promotion ON" : "promotion OFF");
    for (std::size_t p = 0; p < mbps.size(); ++p) {
      std::printf("   %10.0f", mbps[p]);
      result.add(promote ? "promotion-on-mbps" : "promotion-off-mbps",
                 "pass" + std::to_string(p + 1), mbps[p]);
    }
    std::printf("\n");
  }
  return hpcbb::bench::finish(result, argc, argv);
}
