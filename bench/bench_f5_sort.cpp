// F5 — Sort execution time across storage systems. Headline claim: sort
// time reduced up to 28% vs Lustre and 19% vs HDFS. Sort is compute- and
// shuffle-heavy, so the I/O speedup dilutes to tens of percent end-to-end
// (SortJob cpu_scale calibrates the compute fraction; see EXPERIMENTS.md).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using hpcbb::bench::SystemCase;
using sim::SimTime;
using sim::Task;

// Calibrated so map+reduce compute is roughly half of HDFS sort time
// (2015-era Hadoop: JVM record paths and spill merging dominate).
constexpr double kSortCpuScale = 18.0;

struct SortOutcome {
  SimTime makespan = 0;
  double locality = 0;
  bool sorted = true;
};

SortOutcome run_case(const SystemCase& system, std::uint64_t records_per_file,
                     std::uint32_t files) {
  Cluster cluster(hpcbb::bench::default_config(system.scheme));
  SortOutcome outcome;
  hpcbb::bench::run_to_completion(
      cluster,
      [](Cluster& c, cluster::FsKind kind, std::uint32_t nfiles,
         std::uint64_t records, SortOutcome& out) -> Task<void> {
        mapred::GenerateParams gen;
        gen.files = nfiles;
        gen.records_per_file = records;
        auto generated = co_await mapred::generate_records_input(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
        if (!generated.is_ok()) co_return;

        std::vector<std::string> inputs;
        for (std::uint32_t i = 0; i < nfiles; ++i) {
          inputs.push_back(gen.dir + "/part-" + std::to_string(i));
        }
        auto runner = c.make_runner(kind);
        mapred::SortJob job(16, kSortCpuScale);
        auto stats = co_await runner->run(job, inputs, "/out/sort");
        if (!stats.is_ok()) co_return;
        out.makespan = stats.value().makespan_ns;
        out.locality = stats.value().locality_fraction();

        // Spot-check sortedness of one output partition.
        auto reader = co_await c.filesystem(kind).open("/out/sort/part-0",
                                                       c.compute_nodes()[0]);
        if (reader.is_ok()) {
          auto data =
              co_await reader.value()->read(0, reader.value()->size());
          out.sorted =
              data.is_ok() && mapred::records_sorted(data.value());
        }
      }(cluster, system.kind, files, records_per_file, outcome));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F5", "Sort execution time (8 nodes, 16 reducers)",
               "sort time reduced up to 28% vs Lustre, 19% vs HDFS");
  hpcbb::bench::JsonResult result("f5",
                                  "Sort execution time (8 nodes, 16 reducers)");

  // 100-byte records; paper sorts 8-32 GB, we run the scaled sweep.
  const std::vector<std::uint64_t> records_per_file = {320000, 640000,
                                                       1280000};
  constexpr std::uint32_t kFiles = 8;

  std::printf("\n%-12s", "dataset");
  for (const auto& system : hpcbb::bench::all_systems()) {
    std::printf("  %10s", system.label);
  }
  std::printf("   vs-HDFS  vs-Lustre  locality(BB-Local)\n");

  for (const std::uint64_t records : records_per_file) {
    std::printf("%-12s",
                hpcbb::format_bytes(kFiles * records * mapred::kRecordSize)
                    .c_str());
    std::map<std::string, SortOutcome> outcomes;
    const std::string dataset =
        hpcbb::format_bytes(kFiles * records * mapred::kRecordSize);
    for (const auto& system : hpcbb::bench::all_systems()) {
      outcomes[system.label] = run_case(system, records, kFiles);
      std::printf("  %9.2fs%s",
                  hpcbb::ns_to_sec(outcomes[system.label].makespan),
                  outcomes[system.label].sorted ? "" : "!");
      result.add(std::string(system.label) + "-makespan-s", dataset,
                 hpcbb::ns_to_sec(outcomes[system.label].makespan));
    }
    const double best = hpcbb::ns_to_sec(outcomes["BB-Local"].makespan);
    const double hdfs = hpcbb::ns_to_sec(outcomes["HDFS"].makespan);
    const double lustre = hpcbb::ns_to_sec(outcomes["Lustre"].makespan);
    std::printf("   %6.0f%%  %8.0f%%  %17.0f%%\n",
                100.0 * (1.0 - best / hdfs), 100.0 * (1.0 - best / lustre),
                100.0 * outcomes["BB-Local"].locality);
  }
  std::printf("\n(reduction percentages use BB-Local, the scheme the paper "
              "recommends for MapReduce)\n");
  return hpcbb::bench::finish(result, argc, argv);
}
