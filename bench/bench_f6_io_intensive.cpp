// F6 — I/O-intensive workloads: RandomWriter (write-only record generation)
// and Grep (full-scan read) execution time per storage system. The abstract:
// "our design can also significantly benefit I/O-intensive workloads".
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using hpcbb::bench::SystemCase;
using sim::SimTime;
using sim::Task;

struct Outcome {
  SimTime random_writer = 0;
  SimTime grep = 0;
};

Outcome run_case(const SystemCase& system, std::uint64_t records_per_file) {
  Cluster cluster(hpcbb::bench::default_config(system.scheme));
  Outcome outcome;
  hpcbb::bench::run_to_completion(
      cluster,
      [](Cluster& c, cluster::FsKind kind, std::uint64_t records,
         Outcome& out) -> Task<void> {
        mapred::GenerateParams gen;
        gen.files = static_cast<std::uint32_t>(c.compute_nodes().size());
        gen.records_per_file = records;
        auto generated = co_await mapred::generate_records_input(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), gen);
        if (!generated.is_ok()) co_return;
        out.random_writer = generated.value().elapsed_ns;

        std::vector<std::string> inputs;
        for (std::uint32_t i = 0; i < gen.files; ++i) {
          inputs.push_back(gen.dir + "/part-" + std::to_string(i));
        }
        auto runner = c.make_runner(kind);
        mapred::GrepJob job;
        auto stats = co_await runner->run(job, inputs, "/out/grep");
        if (stats.is_ok()) out.grep = stats.value().makespan_ns;
      }(cluster, system.kind, records_per_file, outcome));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F6", "I/O-intensive workloads: RandomWriter + Grep (8 nodes)",
               "significant benefit for I/O-intensive workloads");
  hpcbb::bench::JsonResult result(
      "f6", "I/O-intensive workloads: RandomWriter + Grep (8 nodes)");

  constexpr std::uint64_t kRecordsPerFile = 640000;  // ~64 MB per node
  std::printf("\ndataset: 8 x %s of 100-byte records\n",
              hpcbb::format_bytes(kRecordsPerFile * mapred::kRecordSize)
                  .c_str());
  std::printf("%-10s  %14s  %14s\n", "system", "RandomWriter", "Grep(scan)");
  double hdfs_rw = 0, hdfs_grep = 0;
  for (const auto& system : hpcbb::bench::all_systems()) {
    const Outcome outcome = run_case(system, kRecordsPerFile);
    std::printf("%-10s  %13.2fs  %13.2fs", system.label,
                hpcbb::ns_to_sec(outcome.random_writer),
                hpcbb::ns_to_sec(outcome.grep));
    result.add("random-writer-s", system.label,
               hpcbb::ns_to_sec(outcome.random_writer));
    result.add("grep-s", system.label, hpcbb::ns_to_sec(outcome.grep));
    if (std::string(system.label) == "HDFS") {
      hdfs_rw = hpcbb::ns_to_sec(outcome.random_writer);
      hdfs_grep = hpcbb::ns_to_sec(outcome.grep);
      std::printf("   (baseline)");
    } else {
      std::printf("   %4.1fx / %4.1fx vs HDFS",
                  hpcbb::bench::ratio(hdfs_rw,
                                      hpcbb::ns_to_sec(outcome.random_writer)),
                  hpcbb::bench::ratio(hdfs_grep,
                                      hpcbb::ns_to_sec(outcome.grep)));
    }
    std::printf("\n");
  }
  return hpcbb::bench::finish(result, argc, argv);
}
