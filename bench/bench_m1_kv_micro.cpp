// M1 — real-time microbenchmarks of the production data structures inside
// the KV store: slab allocation, store set/get (single- and multi-threaded),
// CRC32C, consistent-hash lookup, and the pattern generator. These run on
// the host clock via google-benchmark (everything else in bench/ reports
// simulated time).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "common/units.h"
#include "kvstore/ring.h"
#include "kvstore/slab.h"
#include "kvstore/store.h"

namespace {

using namespace hpcbb;  // NOLINT

void BM_SlabAllocateFree(benchmark::State& state) {
  kv::SlabParams params;
  params.memory_budget = 64 * MiB;
  kv::SlabAllocator slab(params);
  const int cls = slab.class_for(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    void* chunk = slab.allocate(cls);
    benchmark::DoNotOptimize(chunk);
    slab.deallocate(cls, chunk);
  }
}
BENCHMARK(BM_SlabAllocateFree)->Arg(128)->Arg(4096)->Arg(65536);

kv::StoreParams micro_store_params(std::uint32_t shards) {
  kv::StoreParams params;
  params.memory_budget = 256 * MiB;
  params.shard_count = shards;
  return params;
}

void BM_StoreSet(benchmark::State& state) {
  static kv::KvStore store(micro_store_params(8));
  const auto value_size = static_cast<std::uint64_t>(state.range(0));
  const Bytes value(value_size, 0x5A);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    const std::string key = "key-" + std::to_string(rng.uniform(0, 9999));
    benchmark::DoNotOptimize(store.set(key, value));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * value_size));
}
BENCHMARK(BM_StoreSet)->Arg(128)->Arg(4096)->Threads(1)->Threads(4);

void BM_StoreGet(benchmark::State& state) {
  static kv::KvStore& store = *[] {
    auto* s = new kv::KvStore(micro_store_params(8));  // leaked: bench-global
    const Bytes value(1024, 0x33);
    for (int i = 0; i < 10000; ++i) {
      (void)s->set("key-" + std::to_string(i), value);
    }
    return s;
  }();
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 7);
  for (auto _ : state) {
    const std::string key = "key-" + std::to_string(rng.uniform(0, 9999));
    benchmark::DoNotOptimize(store.get(key));
  }
}
BENCHMARK(BM_StoreGet)->Threads(1)->Threads(4)->Threads(8);

void BM_Crc32c(benchmark::State& state) {
  const Bytes data = pattern_bytes(1, 0, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 20);

void BM_HashRingLookup(benchmark::State& state) {
  const kv::HashRing ring(static_cast<std::uint32_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    const std::string key = "blk-" + std::to_string(rng.next() % 100000);
    benchmark::DoNotOptimize(ring.server_for(key));
  }
}
BENCHMARK(BM_HashRingLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_PatternBytes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pattern_bytes(7, 0, static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PatternBytes)->Arg(4096)->Arg(1 << 20);

}  // namespace

// Like the simulated-time benches (bench_util.h JsonResult), emit a
// machine-readable JSON result file by default — google-benchmark already
// speaks JSON, so default its --benchmark_out flags instead. An explicit
// --benchmark_out on the command line wins; $HPCBB_BENCH_OUT relocates the
// default file. `--gate` (stripped before google-benchmark sees the args)
// verifies the result against bench/baselines/m1.json via
// tools/bench_gate.py, exactly like the bench_util.h finish() epilogue; the
// baseline's loose tolerances absorb host-clock noise on real-time numbers.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool gate = false;
  bool has_out = false;
  std::string path = "m1_result.json";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i > 0 && arg == "--gate") {
      gate = true;
      continue;
    }
    if (arg.starts_with("--benchmark_out=")) {
      has_out = true;
      path = arg.substr(std::string("--benchmark_out=").size());
    }
    args.push_back(argv[i]);
  }
  std::string out_flag, format_flag;
  if (!has_out) {
    if (const char* dir = std::getenv("HPCBB_BENCH_OUT")) {
      path = std::string(dir) + "/" + path;
    }
    out_flag = "--benchmark_out=" + path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (gate) {
    const char* root = std::getenv("HPCBB_ROOT");
    const std::string base = root != nullptr ? root : ".";
    const std::string cmd = "python3 \"" + base + "/tools/bench_gate.py\""
                            " check \"" + base + "/bench/baselines/m1.json\""
                            " \"" + path + "\"";
    return std::system(cmd.c_str()) == 0 ? 0 : 1;
  }
  return 0;
}
