// F8 — fault tolerance: crash one burst-buffer server immediately after the
// write burst is acknowledged (worst case: nothing flushed yet) and measure
// per scheme what survives; plus HDFS DataNode-loss re-replication for
// comparison.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hpcbb;          // NOLINT
using hpcbb::bench::Cluster;
using sim::SimTime;
using sim::Task;

struct FaultOutcome {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_lost = 0;
  std::uint64_t blocks_recovered = 0;
  std::uint32_t files_fully_readable = 0;
  std::uint32_t files_total = 0;
};

FaultOutcome run_scheme(bb::Scheme scheme) {
  Cluster cluster(hpcbb::bench::default_config(scheme));
  FaultOutcome outcome;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, FaultOutcome& out) -> Task<void> {
        const auto kind = cluster::FsKind::kBurstBuffer;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = 64 * MiB;
        params.verify_on_read = true;
        auto write_result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!write_result.is_ok()) co_return;
        out.blocks_total = params.files * params.file_size /
                           c.config().block_size;
        out.files_total = params.files;

        // Crash one of the KV servers the moment the burst is acked. Routed
        // through the fault injector so the crash is counted and traced
        // (faults.injected{kind=crash}) like any scheduled fault.
        c.injector().crash_target(0);
        co_await c.bb_master().wait_all_flushed();
        out.blocks_lost = c.bb_master().lost_blocks();
        out.blocks_recovered = c.bb_master().recovered_blocks();

        // How many files remain fully readable (from any source)?
        for (std::uint32_t i = 0; i < params.files; ++i) {
          const std::string path =
              params.dir + "/io_file_" + std::to_string(i);
          auto reader = co_await c.filesystem(kind).open(
              path, c.compute_nodes()[i % c.compute_nodes().size()]);
          if (!reader.is_ok()) continue;
          bool all_ok = true;
          const std::uint64_t size = reader.value()->size();
          for (std::uint64_t off = 0; off < size && all_ok; off += 4 * MiB) {
            const std::uint64_t len = std::min<std::uint64_t>(4 * MiB,
                                                              size - off);
            auto data = co_await reader.value()->read(off, len);
            all_ok = data.is_ok() &&
                     verify_pattern(fnv1a(path), off, data.value());
          }
          if (all_ok) ++out.files_fully_readable;
        }
      }(cluster, outcome));
  return outcome;
}

void hdfs_comparison() {
  Cluster cluster(hpcbb::bench::default_config(bb::Scheme::kAsync));
  std::uint32_t readable = 0;
  std::size_t rereplicated = 0;
  hpcbb::bench::run_to_completion(
      cluster, [](Cluster& c, std::uint32_t& files_ok,
                  std::size_t& resched) -> Task<void> {
        const auto kind = cluster::FsKind::kHdfs;
        mapred::DfsioParams params;
        params.files = 8;
        params.file_size = 64 * MiB;
        auto write_result = co_await mapred::dfsio_write(
            c.filesystem(kind), c.hub_for(kind), c.compute_nodes(), params);
        if (!write_result.is_ok()) co_return;
        c.datanode(0).crash();
        resched = c.namenode().mark_datanode_dead(0);
        for (std::uint32_t i = 0; i < params.files; ++i) {
          const std::string path =
              params.dir + "/io_file_" + std::to_string(i);
          auto reader = co_await c.filesystem(kind).open(path, 1);
          if (!reader.is_ok()) continue;
          auto data = co_await reader.value()->read(0, reader.value()->size());
          if (data.is_ok()) ++files_ok;
        }
      }(cluster, readable, rereplicated));
  std::printf("%-10s  %6s  %9s  %13llu  %14u/8\n", "HDFS", "-", "-",
              static_cast<unsigned long long>(rereplicated), readable);
}

}  // namespace

int main(int argc, char** argv) {
  using hpcbb::bench::print_header;
  print_header("F8",
               "fault tolerance: 1 of 4 buffer servers crashes right after "
               "the write burst ack",
               "Sync loses nothing; Local recovers from RAM-disk replicas; "
               "Async has a durability window");
  hpcbb::bench::JsonResult result(
      "f8", "fault tolerance: buffer-server crash after write-burst ack");

  std::printf("\n%-10s  %6s  %9s  %13s  %16s\n", "scheme", "lost",
              "recovered", "re-replicated", "files readable");
  for (const bb::Scheme scheme :
       {bb::Scheme::kAsync, bb::Scheme::kSync, bb::Scheme::kLocal}) {
    const FaultOutcome outcome = run_scheme(scheme);
    const std::string label(to_string(scheme));
    std::printf("%-10s  %6llu  %9llu  %13s  %14u/%u\n", label.c_str(),
                static_cast<unsigned long long>(outcome.blocks_lost),
                static_cast<unsigned long long>(outcome.blocks_recovered),
                "-", outcome.files_fully_readable, outcome.files_total);
    result.add("blocks-lost", label,
               static_cast<double>(outcome.blocks_lost));
    result.add("blocks-recovered", label,
               static_cast<double>(outcome.blocks_recovered));
    result.add("files-readable", label,
               static_cast<double>(outcome.files_fully_readable));
  }
  hdfs_comparison();
  return hpcbb::bench::finish(result, argc, argv);
}
