// Shared helpers for the figure-reproduction benchmarks. Each binary
// regenerates one table/figure from the paper's evaluation (DESIGN.md §4):
// it builds fresh clusters per data point, runs the workload in simulated
// time, and prints the series the paper reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/strings.h"
#include "common/units.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace hpcbb::bench {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;

struct SystemCase {
  const char* label;
  FsKind kind;
  bb::Scheme scheme;
};

// The paper's comparison set: two baselines and the three proposed schemes.
inline std::vector<SystemCase> all_systems() {
  return {
      {"HDFS", FsKind::kHdfs, bb::Scheme::kAsync},
      {"Lustre", FsKind::kLustre, bb::Scheme::kAsync},
      {"BB-Async", FsKind::kBurstBuffer, bb::Scheme::kAsync},
      {"BB-Sync", FsKind::kBurstBuffer, bb::Scheme::kSync},
      {"BB-Local", FsKind::kBurstBuffer, bb::Scheme::kLocal},
  };
}

inline ClusterConfig default_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.scheme = scheme;
  return config;
}

// Spawn the task and drive the simulation to quiescence.
inline void run_to_completion(Cluster& cluster, sim::Task<void> task) {
  cluster.sim().spawn(std::move(task));
  cluster.sim().run();
}

inline void print_header(const char* figure, const char* title,
                         const char* claim) {
  std::printf("== %s: %s ==\n", figure, title);
  std::printf("paper claim: %s\n", claim);
}

inline double ratio(double a, double b) { return b == 0 ? 0.0 : a / b; }

}  // namespace hpcbb::bench
