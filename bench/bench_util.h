// Shared helpers for the figure-reproduction benchmarks. Each binary
// regenerates one table/figure from the paper's evaluation (DESIGN.md §4):
// it builds fresh clusters per data point, runs the workload in simulated
// time, and prints the series the paper reports.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "common/strings.h"
#include "common/units.h"
#include "mapred/workloads.h"
#include "sim/sync.h"

namespace hpcbb::bench {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::FsKind;

struct SystemCase {
  const char* label;
  FsKind kind;
  bb::Scheme scheme;
};

// The paper's comparison set: two baselines and the three proposed schemes.
inline std::vector<SystemCase> all_systems() {
  return {
      {"HDFS", FsKind::kHdfs, bb::Scheme::kAsync},
      {"Lustre", FsKind::kLustre, bb::Scheme::kAsync},
      {"BB-Async", FsKind::kBurstBuffer, bb::Scheme::kAsync},
      {"BB-Sync", FsKind::kBurstBuffer, bb::Scheme::kSync},
      {"BB-Local", FsKind::kBurstBuffer, bb::Scheme::kLocal},
  };
}

inline ClusterConfig default_config(bb::Scheme scheme) {
  ClusterConfig config;
  config.scheme = scheme;
  return config;
}

// Spawn the task and drive the simulation to quiescence.
inline void run_to_completion(Cluster& cluster, sim::Task<void> task) {
  cluster.sim().spawn(std::move(task));
  cluster.sim().run();
}

inline void print_header(const char* figure, const char* title,
                         const char* claim) {
  std::printf("== %s: %s ==\n", figure, title);
  std::printf("paper claim: %s\n", claim);
}

inline double ratio(double a, double b) { return b == 0 ? 0.0 : a / b; }

// Machine-readable benchmark results. Every data point the bench prints is
// also recorded here; write() emits one JSON document per binary (schema
// hpcbb.bench.v1) so plots and regression diffs never have to scrape
// stdout. Output lands in "<id>_result.json" in the working directory, or
// under $HPCBB_BENCH_OUT if that directory variable is set.
class JsonResult {
 public:
  JsonResult(std::string id, std::string title)
      : id_(std::move(id)), title_(std::move(title)) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

  // One data point: `series` names the curve (e.g. "RDMA-set"), `x` the
  // position along it (value size, node count, scheme name, ...).
  void add(const std::string& series, const std::string& x, double value) {
    points_.push_back(Point{series, x, value});
  }
  void add(const std::string& series, std::uint64_t x, double value) {
    add(series, std::to_string(x), value);
  }

  // Returns the path written, or an empty string on I/O failure.
  std::string write() const {
    std::string path = id_ + "_result.json";
    if (const char* dir = std::getenv("HPCBB_BENCH_OUT")) {
      path = std::string(dir) + "/" + path;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return {};
    out << "{\n  \"schema\": \"hpcbb.bench.v1\",\n  \"bench\": \""
        << escape(id_) << "\",\n  \"title\": \"" << escape(title_)
        << "\",\n  \"points\": [";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (i > 0) out << ",";
      char value[32];
      std::snprintf(value, sizeof value, "%.6g", points_[i].value);
      out << "\n    {\"series\": \"" << escape(points_[i].series)
          << "\", \"x\": \"" << escape(points_[i].x) << "\", \"value\": "
          << value << "}";
    }
    out << "\n  ]\n}\n";
    if (!out.flush()) return {};
    std::printf("results: %zu points written to %s\n", points_.size(),
                path.c_str());
    return path;
  }

 private:
  struct Point {
    std::string series, x;
    double value = 0;
  };

  static std::string escape(const std::string& in) {
    std::string out;
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string id_;
  std::string title_;
  std::vector<Point> points_;
};

// ---- perf-regression gate (`--gate`) ----
// With --gate on the command line, a bench verifies its freshly-written
// result against the committed baseline (bench/baselines/<id>.json) via
// tools/bench_gate.py and exits non-zero on a regression outside the
// baseline's tolerances. $HPCBB_ROOT overrides the repo root used to locate
// the script and baselines (default: the current directory).

inline bool gate_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate") return true;
  }
  return false;
}

// Runs the gate check for a result file already on disk; returns main()'s
// exit code (0 = within tolerance).
inline int gate_result(const std::string& id, const std::string& result_path) {
  const char* root = std::getenv("HPCBB_ROOT");
  const std::string base = root != nullptr ? root : ".";
  const std::string cmd = "python3 \"" + base + "/tools/bench_gate.py\""
                          " check \"" + base + "/bench/baselines/" + id +
                          ".json\" \"" + result_path + "\"";
  const int rc = std::system(cmd.c_str());
  return rc == 0 ? 0 : 1;
}

// Standard bench epilogue: write the JSON result, then gate it if --gate
// was passed. Returns main()'s exit code.
inline int finish(const JsonResult& result, int argc, char** argv) {
  const std::string path = result.write();
  if (path.empty()) {
    std::fprintf(stderr, "cannot write %s result file\n", result.id().c_str());
    return 1;
  }
  if (!gate_requested(argc, argv)) return 0;
  return gate_result(result.id(), path);
}

}  // namespace hpcbb::bench
